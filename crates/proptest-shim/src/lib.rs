//! # proptest-shim
//!
//! A minimal, dependency-free, deterministic stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API this workspace uses.
//! The build environment has no network access, so the real crate cannot be
//! fetched; test files written against `proptest::prelude::*` compile and
//! run unchanged against this shim (it is mapped to the `proptest` name via
//! a Cargo dependency rename).
//!
//! Supported surface:
//!
//! * [`Strategy`] with [`Strategy::prop_map`], [`Strategy::prop_flat_map`]
//!   and [`Strategy::boxed`];
//! * integer range strategies (`0usize..15`, `1u8..=4`, …), tuples of
//!   strategies, [`Just`], [`bool::ANY`], [`collection::vec()`] and the
//!   [`prop_oneof!`] union;
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`];
//! * deterministic case generation: each test function derives its RNG seed
//!   from its own name, so failures are reproducible run-over-run.
//!
//! Unlike the real proptest there is **no shrinking** and no persistence of
//! failing cases; a failing case panics with the sampled inputs' assertion
//! message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all sampling.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator seeded from an arbitrary string (the test name).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed tag so empty names work.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Rng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        self.next_u64() % bound
    }
}

/// Why a property-test case failed (carried by `prop_assert*` early returns).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. Every combinator the workspace's tests use is
/// provided; sampling is by value, with no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut Rng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut Rng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut Rng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty alternatives.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Rng, Strategy};

    /// The type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests. Each `#[test] fn name(pat in strategy, ...)`
/// becomes an ordinary `#[test]` that samples its strategies `cases` times
/// (default 256, or the `proptest_config` header) with a deterministic
/// per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::Rng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!("property `{}` failed on case {case}: {err}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// `assert!` that early-returns a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` that early-returns a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?} == {:?}`", l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $($crate::Strategy::boxed($strategy)),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::Rng::deterministic("bounds");
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(3usize..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = crate::Strategy::sample(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let sample = |label: &str| {
            let mut rng = crate::Rng::deterministic(label);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(sample("a"), sample("a"));
        assert_ne!(sample("a"), sample("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_supports_tuples_and_oneof(
            (a, b) in (0u8..4, 0u8..4),
            flip in crate::bool::ANY,
            v in crate::collection::vec(0i32..10, 0..=5),
            choice in prop_oneof![Just(0usize), (1usize..3).prop_map(|x| x)],
        ) {
            prop_assert!(a < 4 && b < 4);
            prop_assert!(v.len() <= 5);
            prop_assert!(choice < 3);
            if flip {
                return Ok(());
            }
            prop_assert_eq!(a as usize + choice, choice + a as usize, "commutes");
        }
    }
}
