//! The three admissibility checkers must agree on every (model, test)
//! pair. This is the workspace's strongest evidence that the SAT encodings
//! implement exactly the five axioms of §2.2.

use mcm_axiomatic::{Checker, ExplicitChecker, MonolithicSatChecker, SatChecker};
use mcm_core::{
    ArgPos, Atom, Formula, LitmusTest, Loc, MemoryModel, Outcome, Program, Reg, ThreadId, Value,
};
use proptest::prelude::*;

/// A pool of structurally diverse must-not-reorder functions: the named
/// models of §2.4 plus assorted corner cases.
fn model_pool() -> Vec<MemoryModel> {
    use ArgPos::{First, Second};
    let read_x = || Formula::atom(Atom::IsRead(First));
    let fence = Formula::fence_either;
    let ww = || {
        Formula::and([
            Formula::atom(Atom::IsWrite(First)),
            Formula::atom(Atom::IsWrite(Second)),
        ])
    };
    vec![
        MemoryModel::new("SC", Formula::always()),
        MemoryModel::new("weakest", Formula::never()),
        MemoryModel::new("fences-only", fence()),
        MemoryModel::new(
            "TSO",
            Formula::or([ww(), read_x(), fence()]),
        ),
        MemoryModel::new(
            "PSO",
            Formula::or([
                Formula::and([ww(), Formula::atom(Atom::SameAddr)]),
                read_x(),
                fence(),
            ]),
        ),
        MemoryModel::new(
            "RMO-ish",
            Formula::or([
                Formula::and([
                    Formula::atom(Atom::IsWrite(Second)),
                    Formula::atom(Atom::SameAddr),
                ]),
                Formula::atom(Atom::DataDep),
                Formula::atom(Atom::CtrlDep),
                fence(),
            ]),
        ),
        MemoryModel::new("same-addr-only", Formula::atom(Atom::SameAddr)),
        MemoryModel::new("deps-only", Formula::atom(Atom::DataDep)),
    ]
}

/// One randomly-shaped thread instruction menu entry.
#[derive(Clone, Copy, Debug)]
enum Step {
    Write { loc: u8, value: i64 },
    Read { loc: u8, value: i64 },
    Fence,
    /// read; dep-op; dependent write chain (3 instructions).
    DepChain { loc_read: u8, loc_write: u8, read_value: i64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..3, 1i64..3).prop_map(|(loc, value)| Step::Write { loc, value }),
        (0u8..3, 0i64..3).prop_map(|(loc, value)| Step::Read { loc, value }),
        Just(Step::Fence),
        (0u8..3, 0u8..3, 0i64..3).prop_map(|(loc_read, loc_write, read_value)| {
            Step::DepChain {
                loc_read,
                loc_write,
                read_value,
            }
        }),
    ]
}

fn build_test(threads: &[Vec<Step>]) -> Option<LitmusTest> {
    let mut builder = Program::builder();
    let mut outcome = Outcome::new();
    for (t, steps) in threads.iter().enumerate() {
        builder = builder.thread();
        let tid = ThreadId(t as u8);
        let mut next_reg = 1u8;
        for step in steps {
            match *step {
                Step::Write { loc, value } => {
                    builder = builder.write(Loc(loc), Value(value));
                }
                Step::Read { loc, value } => {
                    let reg = Reg(next_reg);
                    next_reg += 1;
                    builder = builder.read(Loc(loc), reg);
                    outcome = outcome.constrain(tid, reg, Value(value));
                }
                Step::Fence => {
                    builder = builder.fence();
                }
                Step::DepChain {
                    loc_read,
                    loc_write,
                    read_value,
                } => {
                    let reg = Reg(next_reg);
                    let tmp = Reg(next_reg + 1);
                    next_reg += 2;
                    builder = builder
                        .read(Loc(loc_read), reg)
                        .dep_const(tmp, reg, Value(1))
                        .write_expr(Loc(loc_write), mcm_core::RegExpr::Reg(tmp));
                    outcome = outcome.constrain(tid, reg, Value(read_value));
                }
            }
        }
    }
    let program = builder.build().ok()?;
    LitmusTest::new("random", program, outcome).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn checkers_agree_on_random_tests(
        t1 in proptest::collection::vec(step_strategy(), 1..4),
        t2 in proptest::collection::vec(step_strategy(), 1..4),
        model_idx in 0usize..8,
    ) {
        let Some(test) = build_test(&[t1, t2]) else {
            return Ok(()); // builder rejected the shape; nothing to check
        };
        let model = &model_pool()[model_idx];
        let explicit = ExplicitChecker::new().check(model, &test);
        let sat = SatChecker::new().check(model, &test);
        let monolithic = MonolithicSatChecker::new().check(model, &test);
        prop_assert_eq!(
            explicit.allowed, sat.allowed,
            "explicit vs sat disagree on {} under {}", test, model
        );
        prop_assert_eq!(
            sat.allowed, monolithic.allowed,
            "sat vs monolithic disagree on {} under {}", test, model
        );
    }

    #[test]
    fn allowed_never_shrinks_for_weaker_models(
        t1 in proptest::collection::vec(step_strategy(), 1..4),
        t2 in proptest::collection::vec(step_strategy(), 1..4),
    ) {
        // SC is the strongest model in the class: anything SC allows, every
        // other pool model allows too (their F is weaker pointwise).
        let Some(test) = build_test(&[t1, t2]) else { return Ok(()); };
        let checker = ExplicitChecker::new();
        let sc = MemoryModel::new("SC", Formula::always());
        if checker.is_allowed(&sc, &test) {
            for model in &model_pool() {
                prop_assert!(
                    checker.is_allowed(model, &test),
                    "{} forbids an SC-allowed outcome of {}", model, test
                );
            }
        }
    }
}
