//! Read-from maps (the paper's `↦` relation, §2.2).

use mcm_core::{EventId, Execution, Value};

/// Where a read gets its value: a specific write event, or the initial
/// memory state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RfSource {
    /// Reads the initial value (zero) — no write is mapped.
    Init,
    /// Reads the value stored by this write event.
    Write(EventId),
}

/// A complete read-from map: one [`RfSource`] per read event, in the order
/// produced by [`Execution::reads`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RfMap {
    /// `(read, source)` pairs.
    pub pairs: Vec<(EventId, RfSource)>,
}

impl RfMap {
    /// The source of `read`, if `read` is indeed a read of this execution.
    #[must_use]
    pub fn source_of(&self, read: EventId) -> Option<RfSource> {
        self.pairs
            .iter()
            .find(|(r, _)| *r == read)
            .map(|(_, s)| *s)
    }
}

/// The value-consistent source candidates of every read:
///
/// * a write source must access the same location and store exactly the
///   value the read observes;
/// * a read may take the initial value only if it observes [`Value::INIT`];
/// * a read may not read from a program-order-*later* write of its own
///   thread (the paper's "cannot read from a future write" rule). Reading
///   from a program-earlier local write is allowed — that is early
///   forwarding, which the write-read axiom deliberately exempts from
///   happens-before (see Figure 1's discussion of TSO).
///
/// An empty candidate list for any read means the demanded outcome is
/// value-infeasible: no model in the class (not even the weakest) allows
/// the test.
#[must_use]
pub fn read_candidates(exec: &Execution) -> Vec<(EventId, Vec<RfSource>)> {
    exec.reads()
        .map(|read| {
            let loc = read.loc().expect("read has a location");
            let value = read.value().expect("read has a value");
            let mut sources = Vec::new();
            if value == Value::INIT {
                sources.push(RfSource::Init);
            }
            for w in exec.writes_to(loc) {
                if w.value() == Some(value) && !exec.po_earlier(read.id, w.id) {
                    sources.push(RfSource::Write(w.id));
                }
            }
            (read.id, sources)
        })
        .collect()
}

/// Enumerates every read-from map consistent with the execution's values
/// (the Cartesian product of [`read_candidates`]).
#[must_use]
pub fn enumerate_rf_maps(exec: &Execution) -> Vec<RfMap> {
    let per_read = read_candidates(exec);
    let mut maps: Vec<Vec<(EventId, RfSource)>> = vec![Vec::new()];
    for (read, sources) in &per_read {
        if sources.is_empty() {
            return Vec::new();
        }
        let mut next = Vec::with_capacity(maps.len() * sources.len());
        for prefix in &maps {
            for &s in sources {
                let mut extended = prefix.clone();
                extended.push((*read, s));
                next.push(extended);
            }
        }
        maps = next;
    }
    maps.into_iter().map(|pairs| RfMap { pairs }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::{Loc, Outcome, Program, Reg, ThreadId, Value};

    fn exec(program: Program, outcome: Outcome) -> Execution {
        Execution::from_program(&program, &outcome).unwrap()
    }

    #[test]
    fn read_of_written_value_maps_to_the_write() {
        let e = exec(
            Program::builder()
                .thread()
                .write(Loc::X, Value(1))
                .thread()
                .read(Loc::X, Reg(1))
                .build()
                .unwrap(),
            Outcome::new().constrain(ThreadId(1), Reg(1), Value(1)),
        );
        let maps = enumerate_rf_maps(&e);
        assert_eq!(maps.len(), 1);
        let write = e.writes().next().unwrap().id;
        assert_eq!(maps[0].pairs[0].1, RfSource::Write(write));
    }

    #[test]
    fn read_of_zero_can_be_init() {
        let e = exec(
            Program::builder()
                .thread()
                .write(Loc::X, Value(1))
                .thread()
                .read(Loc::X, Reg(1))
                .build()
                .unwrap(),
            Outcome::new().constrain(ThreadId(1), Reg(1), Value(0)),
        );
        let maps = enumerate_rf_maps(&e);
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].pairs[0].1, RfSource::Init);
    }

    #[test]
    fn infeasible_value_has_no_maps() {
        let e = exec(
            Program::builder()
                .thread()
                .write(Loc::X, Value(1))
                .thread()
                .read(Loc::X, Reg(1))
                .build()
                .unwrap(),
            Outcome::new().constrain(ThreadId(1), Reg(1), Value(7)),
        );
        assert!(enumerate_rf_maps(&e).is_empty());
    }

    #[test]
    fn future_local_write_is_not_a_source() {
        // R X -> r1 (=1); W X = 1  — the only write of 1 is po-later.
        let e = exec(
            Program::builder()
                .thread()
                .read(Loc::X, Reg(1))
                .write(Loc::X, Value(1))
                .build()
                .unwrap(),
            Outcome::new().constrain(ThreadId(0), Reg(1), Value(1)),
        );
        assert!(enumerate_rf_maps(&e).is_empty());
    }

    #[test]
    fn earlier_local_write_is_a_source() {
        // W X = 1; R X -> r1 (=1): forwarding.
        let e = exec(
            Program::builder()
                .thread()
                .write(Loc::X, Value(1))
                .read(Loc::X, Reg(1))
                .build()
                .unwrap(),
            Outcome::new().constrain(ThreadId(0), Reg(1), Value(1)),
        );
        let maps = enumerate_rf_maps(&e);
        assert_eq!(maps.len(), 1);
        assert!(matches!(maps[0].pairs[0].1, RfSource::Write(_)));
    }

    #[test]
    fn ambiguous_sources_multiply() {
        // Two writes of the same value to X; a read of that value has two
        // candidate sources.
        let e = exec(
            Program::builder()
                .thread()
                .write(Loc::X, Value(1))
                .thread()
                .write(Loc::X, Value(1))
                .thread()
                .read(Loc::X, Reg(1))
                .build()
                .unwrap(),
            Outcome::new().constrain(ThreadId(2), Reg(1), Value(1)),
        );
        assert_eq!(enumerate_rf_maps(&e).len(), 2);
    }

    #[test]
    fn source_of_finds_pairs() {
        let e = exec(
            Program::builder()
                .thread()
                .read(Loc::X, Reg(1))
                .build()
                .unwrap(),
            Outcome::new().constrain(ThreadId(0), Reg(1), Value(0)),
        );
        let maps = enumerate_rf_maps(&e);
        let read = e.reads().next().unwrap().id;
        assert_eq!(maps[0].source_of(read), Some(RfSource::Init));
        assert_eq!(maps[0].source_of(EventId(99)), None);
    }
}
