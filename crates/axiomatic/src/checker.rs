//! The admissibility interface shared by all checkers.

use std::fmt;

use mcm_core::{EventId, Execution, LitmusTest, MemoryModel};
use mcm_sat::SolverStats;

use crate::co::CoOrder;
use crate::hb::EdgeKind;
use crate::rf::RfMap;

/// Evidence that an execution is allowed: the read-from map, coherence
/// order and forced happens-before edges of a consistent choice.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The read-from map.
    pub rf: RfMap,
    /// The coherence order.
    pub co: CoOrder,
    /// The forced happens-before edges (acyclic).
    pub hb_edges: Vec<(EventId, EventId, EdgeKind)>,
}

/// The answer to "is this test admissible under this model?".
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Whether the demanded outcome is allowed.
    pub allowed: bool,
    /// A witness when allowed (checkers always produce one).
    pub witness: Option<Witness>,
}

impl Verdict {
    /// An "allowed" verdict carrying its witness.
    #[must_use]
    pub fn allowed(witness: Witness) -> Self {
        Verdict {
            allowed: true,
            witness: Some(witness),
        }
    }

    /// A "forbidden" verdict.
    #[must_use]
    pub fn forbidden() -> Self {
        Verdict {
            allowed: false,
            witness: None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.allowed {
            write!(f, "allowed")
        } else {
            write!(f, "forbidden")
        }
    }
}

/// An admissibility checker: decides whether a litmus test's demanded
/// outcome is allowed under a memory model.
///
/// Three independent implementations exist — [`crate::ExplicitChecker`]
/// (enumeration + cycle detection), [`crate::SatChecker`] (the paper's
/// architecture: SAT over happens-before ordering variables) and
/// [`crate::MonolithicSatChecker`] (read-from choices encoded as SAT
/// variables too) — and the test suite cross-validates them.
pub trait Checker {
    /// Short name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Decides admissibility of a pre-derived candidate execution.
    fn check_execution(&self, model: &MemoryModel, exec: &Execution) -> Verdict;

    /// Decides admissibility of a litmus test under `model`.
    fn check(&self, model: &MemoryModel, test: &LitmusTest) -> Verdict {
        self.check_execution(model, &test.execution())
    }

    /// Convenience: just the boolean.
    fn is_allowed(&self, model: &MemoryModel, test: &LitmusTest) -> bool {
        self.check(model, test).allowed
    }

    /// Accumulated SAT-solver work counters, for checkers that are backed
    /// by `mcm-sat` ([`crate::SatChecker`], [`crate::MonolithicSatChecker`]).
    /// Totals cover every query this checker instance has answered.
    /// Checkers with no solver return `None` (the default).
    fn solver_stats(&self) -> Option<SolverStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::forbidden().to_string(), "forbidden");
        assert!(!Verdict::forbidden().allowed);
        assert!(Verdict::forbidden().witness.is_none());
    }
}
