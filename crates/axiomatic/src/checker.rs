//! The admissibility interface shared by all checkers.

use std::fmt;

use mcm_core::{EventId, Execution, LitmusTest, MemoryModel};
use mcm_sat::SolverStats;

use crate::co::CoOrder;
use crate::hb::EdgeKind;
use crate::rf::RfMap;

/// Evidence that an execution is allowed: the read-from map, coherence
/// order and forced happens-before edges of a consistent choice.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The read-from map.
    pub rf: RfMap,
    /// The coherence order.
    pub co: CoOrder,
    /// The forced happens-before edges (acyclic).
    pub hb_edges: Vec<(EventId, EventId, EdgeKind)>,
}

/// The answer to "is this test admissible under this model?".
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Whether the demanded outcome is allowed.
    pub allowed: bool,
    /// A witness when allowed (checkers always produce one).
    pub witness: Option<Witness>,
}

impl Verdict {
    /// An "allowed" verdict carrying its witness.
    #[must_use]
    pub fn allowed(witness: Witness) -> Self {
        Verdict {
            allowed: true,
            witness: Some(witness),
        }
    }

    /// A "forbidden" verdict.
    #[must_use]
    pub fn forbidden() -> Self {
        Verdict {
            allowed: false,
            witness: None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.allowed {
            write!(f, "allowed")
        } else {
            write!(f, "forbidden")
        }
    }
}

/// An admissibility checker: decides whether a litmus test's demanded
/// outcome is allowed under a memory model.
///
/// Three independent implementations exist — [`crate::ExplicitChecker`]
/// (enumeration + cycle detection), [`crate::SatChecker`] (the paper's
/// architecture: SAT over happens-before ordering variables) and
/// [`crate::MonolithicSatChecker`] (read-from choices encoded as SAT
/// variables too) — and the test suite cross-validates them.
pub trait Checker {
    /// Short name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Decides admissibility of a pre-derived candidate execution.
    fn check_execution(&self, model: &MemoryModel, exec: &Execution) -> Verdict;

    /// Decides admissibility of a litmus test under `model`.
    fn check(&self, model: &MemoryModel, test: &LitmusTest) -> Verdict {
        self.check_execution(model, &test.execution())
    }

    /// Convenience: just the boolean.
    fn is_allowed(&self, model: &MemoryModel, test: &LitmusTest) -> bool {
        self.check(model, test).allowed
    }

    /// Accumulated SAT-solver work counters, for checkers that are backed
    /// by `mcm-sat` ([`crate::SatChecker`], [`crate::MonolithicSatChecker`]).
    /// Totals cover every query this checker instance has answered.
    /// Checkers with no solver return `None` (the default).
    fn solver_stats(&self) -> Option<SolverStats> {
        None
    }
}

/// The built-in checkers, as data: names, construction and capabilities
/// in one place, so CLI `--checker` resolution and cross-validation test
/// matrices dispatch on an enum instead of string-matching display names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CheckerKind {
    /// [`crate::ExplicitChecker`] — exhaustive `(rf, co)` enumeration.
    Explicit,
    /// [`crate::SatChecker`] — the paper's §4.1 architecture: one SAT
    /// query per read-from map.
    Sat,
    /// [`crate::MonolithicSatChecker`] — one SAT query per test with
    /// read-from selector variables.
    Monolithic,
}

impl CheckerKind {
    /// Every built-in checker kind.
    pub const ALL: [CheckerKind; 3] =
        [CheckerKind::Explicit, CheckerKind::Sat, CheckerKind::Monolithic];

    /// The stable CLI / report name (`explicit`, `sat`, `monolithic`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CheckerKind::Explicit => "explicit",
            CheckerKind::Sat => "sat",
            CheckerKind::Monolithic => "monolithic",
        }
    }

    /// Resolves a (case-insensitive) name back to its kind.
    #[must_use]
    pub fn from_name(name: &str) -> Option<CheckerKind> {
        CheckerKind::ALL
            .into_iter()
            .find(|kind| kind.name().eq_ignore_ascii_case(name))
    }

    /// Whether this checker is backed by `mcm-sat` (and so reports
    /// [`Checker::solver_stats`]).
    #[must_use]
    pub fn sat_backed(self) -> bool {
        !matches!(self, CheckerKind::Explicit)
    }

    /// Whether [`CheckerKind::build_batch`] returns a natively test-major
    /// implementation (work shared across a model row) rather than the
    /// per-cell adapter.
    #[must_use]
    pub fn natively_batched(self) -> bool {
        matches!(self, CheckerKind::Explicit | CheckerKind::Monolithic)
    }

    /// Builds the per-cell checker.
    #[must_use]
    pub fn build(self) -> Box<dyn Checker> {
        match self {
            CheckerKind::Explicit => Box::new(crate::ExplicitChecker::new()),
            CheckerKind::Sat => Box::new(crate::SatChecker::new()),
            CheckerKind::Monolithic => Box::new(crate::MonolithicSatChecker::new()),
        }
    }

    /// Builds the batched (test-major) counterpart: the shared-candidate
    /// enumerator for [`CheckerKind::Explicit`], the assumption-selected
    /// incremental encoding for [`CheckerKind::Monolithic`] (whose base
    /// clauses it shares), and the per-cell adapter for
    /// [`CheckerKind::Sat`] (its outside-the-solver read-from enumeration
    /// has no shared encoding to amortize).
    #[must_use]
    pub fn build_batch(self) -> Box<dyn crate::BatchChecker> {
        match self {
            CheckerKind::Explicit => Box::new(crate::BatchExplicitChecker::new()),
            CheckerKind::Sat => Box::new(crate::SatChecker::new()),
            CheckerKind::Monolithic => Box::new(crate::BatchSatChecker::new()),
        }
    }
}

impl fmt::Display for CheckerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::forbidden().to_string(), "forbidden");
        assert!(!Verdict::forbidden().allowed);
        assert!(Verdict::forbidden().witness.is_none());
    }

    #[test]
    fn kinds_round_trip_their_names() {
        for kind in CheckerKind::ALL {
            assert_eq!(CheckerKind::from_name(kind.name()), Some(kind));
            assert_eq!(
                CheckerKind::from_name(&kind.name().to_uppercase()),
                Some(kind)
            );
            // Display names may be longer (`sat-monolithic`), but always
            // contain the stable kind name.
            assert!(kind.build().name().contains(kind.name()));
        }
        assert_eq!(CheckerKind::from_name("powerpc"), None);
    }

    #[test]
    fn capabilities_match_the_implementations() {
        assert!(!CheckerKind::Explicit.sat_backed());
        assert!(CheckerKind::Sat.sat_backed());
        assert!(CheckerKind::Monolithic.sat_backed());
        for kind in CheckerKind::ALL {
            assert_eq!(kind.build().solver_stats().is_some(), kind.sat_backed());
        }
        assert!(CheckerKind::Explicit.natively_batched());
        assert!(!CheckerKind::Sat.natively_batched());
        assert_eq!(CheckerKind::Explicit.build_batch().name(), "batch-explicit");
        assert_eq!(CheckerKind::Monolithic.build_batch().name(), "batch-sat");
        assert_eq!(CheckerKind::Sat.build_batch().name(), "sat");
    }
}
