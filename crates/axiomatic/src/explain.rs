//! Human-readable rendering of admissibility verdicts.
//!
//! Produces the kind of explanation Figure 1 of the paper gives for Test A
//! under TSO: the events of each thread, the read-from map, the coherence
//! order and the forced happens-before edges — or, for forbidden outcomes,
//! a happens-before cycle from one representative `(rf, co)` choice.

use std::fmt::Write as _;

use mcm_core::{Execution, MemoryModel};

use crate::checker::{Verdict, Witness};
use crate::co::enumerate_co_orders;
use crate::hb::required_edges;
use crate::rf::{enumerate_rf_maps, RfSource};

/// Renders a verdict with its evidence.
///
/// For allowed outcomes the witness (rf, co, acyclic edge set) is shown;
/// for forbidden outcomes the first `(rf, co)` choice is re-derived and its
/// cycle (or ignore-local violation) displayed, mirroring how the paper
/// argues Figure 1.
#[must_use]
pub fn render(model: &MemoryModel, exec: &Execution, verdict: &Verdict) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "model: {model}");
    for t in 0..exec.num_threads() {
        let tid = mcm_core::ThreadId(t as u8);
        let _ = writeln!(out, "{tid}:");
        for &e in exec.thread_events(tid) {
            let _ = writeln!(out, "  {}", exec.event(e));
        }
    }
    match (&verdict.allowed, &verdict.witness) {
        (true, Some(witness)) => {
            let _ = writeln!(out, "verdict: ALLOWED");
            render_witness(&mut out, exec, witness);
        }
        (true, None) => {
            let _ = writeln!(out, "verdict: ALLOWED (no witness recorded)");
        }
        (false, _) => {
            let _ = writeln!(out, "verdict: FORBIDDEN");
            render_refutation(&mut out, model, exec);
        }
    }
    out
}

fn render_witness(out: &mut String, exec: &Execution, witness: &Witness) {
    let _ = writeln!(out, "read-from:");
    for &(read, source) in &witness.rf.pairs {
        match source {
            RfSource::Init => {
                let _ = writeln!(out, "  {} reads the initial value", exec.event(read));
            }
            RfSource::Write(w) => {
                let _ = writeln!(out, "  {} reads from {}", exec.event(read), exec.event(w));
            }
        }
    }
    let multi_write: Vec<_> = witness
        .co
        .per_loc
        .iter()
        .filter(|(_, ws)| ws.len() > 1)
        .collect();
    if !multi_write.is_empty() {
        let _ = writeln!(out, "coherence:");
        for (loc, writes) in multi_write {
            let chain: Vec<String> = writes.iter().map(|w| exec.event(*w).to_string()).collect();
            let _ = writeln!(out, "  {loc}: {}", chain.join(" -> "));
        }
    }
    let _ = writeln!(out, "happens-before edges (acyclic):");
    for &(from, to, kind) in &witness.hb_edges {
        let _ = writeln!(out, "  {} --{kind}--> {}", exec.event(from), exec.event(to));
    }
}

fn render_refutation(out: &mut String, model: &MemoryModel, exec: &Execution) {
    let rf_maps = enumerate_rf_maps(exec);
    if rf_maps.is_empty() {
        let _ = writeln!(
            out,
            "no read-from map matches the demanded values: the outcome is \
             value-infeasible in every model of the class"
        );
        return;
    }
    let co_orders = enumerate_co_orders(exec);
    let _ = writeln!(
        out,
        "every choice of read-from map ({}) and coherence order ({}) fails; \
         the first one fails because:",
        rf_maps.len(),
        co_orders.len()
    );
    let rf = &rf_maps[0];
    let co = &co_orders[0];
    let edges = required_edges(model, exec, rf, co);
    for &(x, y, kind) in &edges.labeled {
        if exec.po_earlier(y, x) {
            let _ = writeln!(
                out,
                "  the forced {kind} edge {} --> {} contradicts program order (ignore-local)",
                exec.event(x),
                exec.event(y)
            );
            return;
        }
    }
    if let Some(cycle) = edges.graph.find_cycle() {
        let chain: Vec<String> = cycle
            .iter()
            .map(|&i| exec.event(mcm_core::EventId(i as u32)).to_string())
            .collect();
        let _ = writeln!(out, "  happens-before cycle: {} -> (back)", chain.join(" -> "));
    } else {
        let _ = writeln!(
            out,
            "  (this particular choice is consistent; a later one fails — rerun \
             with the explicit checker for the full enumeration)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::explicit::ExplicitChecker;
    use mcm_core::{Formula, LitmusTest, Loc, Outcome, Program, Reg, ThreadId, Value};

    fn sb() -> LitmusTest {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(ThreadId(0), Reg(1), Value(0))
            .constrain(ThreadId(1), Reg(2), Value(0));
        LitmusTest::new("SB", program, outcome).unwrap()
    }

    #[test]
    fn allowed_verdicts_render_their_witness() {
        let model = MemoryModel::new("weakest", Formula::never());
        let test = sb();
        let exec = test.execution();
        let verdict = ExplicitChecker::new().check(&model, &test);
        let text = render(&model, &exec, &verdict);
        assert!(text.contains("ALLOWED"));
        assert!(text.contains("reads the initial value"));
        assert!(text.contains("happens-before edges"));
    }

    #[test]
    fn forbidden_verdicts_show_a_cycle() {
        let model = MemoryModel::new("SC", Formula::always());
        let test = sb();
        let exec = test.execution();
        let verdict = ExplicitChecker::new().check(&model, &test);
        let text = render(&model, &exec, &verdict);
        assert!(text.contains("FORBIDDEN"));
        assert!(text.contains("cycle") || text.contains("ignore-local"));
    }

    #[test]
    fn value_infeasible_outcomes_are_called_out() {
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(9));
        let test = LitmusTest::new("inf", program, outcome).unwrap();
        let model = MemoryModel::new("weakest", Formula::never());
        let exec = test.execution();
        let verdict = ExplicitChecker::new().check(&model, &test);
        let text = render(&model, &exec, &verdict);
        assert!(text.contains("value-infeasible"));
    }
}
