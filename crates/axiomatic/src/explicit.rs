//! Enumeration-based admissibility checker.
//!
//! Enumerates every read-from map and coherence order, builds the forced
//! happens-before edges and checks for a consistent partial order. Exact
//! and fast on litmus-sized executions; serves both as the exploration
//! engine's workhorse and as a SAT-free cross-check of the paper's
//! SAT-based tool architecture.

use mcm_core::{Execution, MemoryModel};

use crate::checker::{Checker, Verdict, Witness};
use crate::co::enumerate_co_orders;
use crate::hb::required_edges;
use crate::rf::enumerate_rf_maps;

/// Admissibility by exhaustive `(rf, co)` enumeration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExplicitChecker;

impl ExplicitChecker {
    /// Creates the checker (stateless).
    #[must_use]
    pub fn new() -> Self {
        ExplicitChecker
    }
}

impl Checker for ExplicitChecker {
    fn name(&self) -> &'static str {
        "explicit"
    }

    fn check_execution(&self, model: &MemoryModel, exec: &Execution) -> Verdict {
        let co_orders = enumerate_co_orders(exec);
        for rf in enumerate_rf_maps(exec) {
            for co in &co_orders {
                let edges = required_edges(model, exec, &rf, co);
                if edges.admits_partial_order(exec) {
                    return Verdict::allowed(Witness {
                        rf,
                        co: co.clone(),
                        hb_edges: edges.labeled,
                    });
                }
            }
        }
        Verdict::forbidden()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::{Formula, LitmusTest, Loc, Outcome, Program, Reg, ThreadId, Value};

    fn sc() -> MemoryModel {
        MemoryModel::new("SC", Formula::always())
    }

    fn weakest() -> MemoryModel {
        MemoryModel::new("weakest", Formula::never())
    }

    fn sb() -> LitmusTest {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(ThreadId(0), Reg(1), Value(0))
            .constrain(ThreadId(1), Reg(2), Value(0));
        LitmusTest::new("SB", program, outcome).unwrap()
    }

    #[test]
    fn sb_forbidden_under_sc_allowed_when_unordered() {
        let checker = ExplicitChecker::new();
        assert!(!checker.is_allowed(&sc(), &sb()));
        assert!(checker.is_allowed(&weakest(), &sb()));
    }

    #[test]
    fn allowed_verdicts_carry_witnesses() {
        let checker = ExplicitChecker::new();
        let verdict = checker.check(&weakest(), &sb());
        let witness = verdict.witness.expect("allowed verdict has witness");
        assert_eq!(witness.rf.pairs.len(), 2);
    }

    #[test]
    fn value_infeasible_outcome_is_forbidden_everywhere() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .thread()
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(1), Reg(1), Value(9));
        let test = LitmusTest::new("bad-value", program, outcome).unwrap();
        let checker = ExplicitChecker::new();
        assert!(!checker.is_allowed(&weakest(), &test));
    }

    #[test]
    fn sequential_program_allows_its_sequential_outcome() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(1));
        let test = LitmusTest::new("seq", program, outcome).unwrap();
        assert!(ExplicitChecker::new().is_allowed(&sc(), &test));
    }
}
