//! Monolithic SAT checker: one query decides the whole test.
//!
//! Unlike [`crate::SatChecker`], the read-from choice is part of the CNF:
//! each read gets selector variables over its value-consistent sources, and
//! the write-read / read-write axioms become clauses conditioned on the
//! selectors. One satisfiable assignment simultaneously picks the read-from
//! map, the coherence order and the happens-before relation.

use mcm_core::{Execution, MemoryModel};
use mcm_sat::{SatResult, Solver};

use crate::checker::{Checker, Verdict, Witness};
use crate::hb::required_edges;
use crate::rf::read_candidates;
use crate::sat_common::{add_rf_selector_clauses, extract_rf, OrderVars};

/// Admissibility via a single SAT query with read-from selector variables.
#[derive(Clone, Debug, Default)]
pub struct MonolithicSatChecker {
    /// Work counters totalled across every query; interior mutability
    /// because [`Checker`] methods take `&self`.
    stats: std::cell::Cell<mcm_sat::SolverStats>,
}

impl MonolithicSatChecker {
    /// Creates the checker.
    #[must_use]
    pub fn new() -> Self {
        MonolithicSatChecker::default()
    }

    fn absorb_stats(&self, solver: &Solver) {
        let mut total = self.stats.get();
        total.absorb(solver.stats());
        self.stats.set(total);
    }
}

impl Checker for MonolithicSatChecker {
    fn name(&self) -> &'static str {
        "sat-monolithic"
    }

    fn check_execution(&self, model: &MemoryModel, exec: &Execution) -> Verdict {
        let candidates = read_candidates(exec);
        if candidates.iter().any(|(_, sources)| sources.is_empty()) {
            return Verdict::forbidden();
        }

        let n = exec.events().len();
        let mut solver = Solver::new();
        let order = OrderVars::new(&mut solver, n);
        order.add_partial_order_clauses(&mut solver);
        order.add_model_clauses(&mut solver, model, exec);

        // The read-from layer is model-independent and shared with the
        // batched SAT checker (see `sat_common`): selector variables plus
        // the write-read / read-write axioms conditioned on them.
        let selectors = add_rf_selector_clauses(&mut solver, exec, &order, &candidates);

        let result = solver.solve();
        self.absorb_stats(&solver);
        if result != SatResult::Sat {
            return Verdict::forbidden();
        }

        let rf = extract_rf(&solver, &candidates, &selectors);
        let co = order.extract_co(&solver, exec);
        let edges = required_edges(model, exec, &rf, &co);
        debug_assert!(edges.admits_partial_order(exec));
        Verdict::allowed(Witness {
            rf,
            co,
            hb_edges: edges.labeled,
        })
    }

    fn solver_stats(&self) -> Option<mcm_sat::SolverStats> {
        Some(self.stats.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::RfSource;
    use mcm_core::{Formula, LitmusTest, Loc, Outcome, Program, Reg, ThreadId, Value};

    fn sc() -> MemoryModel {
        MemoryModel::new("SC", Formula::always())
    }

    fn weakest() -> MemoryModel {
        MemoryModel::new("weakest", Formula::never())
    }

    fn lb() -> LitmusTest {
        // Load buffering: R X=1; W Y=1 || R Y=1; W X=1.
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .write(Loc::Y, Value(1))
            .thread()
            .read(Loc::Y, Reg(2))
            .write(Loc::X, Value(1))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(ThreadId(0), Reg(1), Value(1))
            .constrain(ThreadId(1), Reg(2), Value(1));
        LitmusTest::new("LB", program, outcome).unwrap()
    }

    #[test]
    fn lb_under_sc_and_weakest() {
        let checker = MonolithicSatChecker::new();
        assert!(!checker.is_allowed(&sc(), &lb()));
        assert!(checker.is_allowed(&weakest(), &lb()));
    }

    #[test]
    fn witness_decodes_selectors() {
        let checker = MonolithicSatChecker::new();
        let verdict = checker.check(&weakest(), &lb());
        let witness = verdict.witness.expect("allowed");
        // Both reads read 1, which only the cross-thread writes store.
        for (_, source) in &witness.rf.pairs {
            assert!(matches!(source, RfSource::Write(_)));
        }
    }

    #[test]
    fn infeasible_value_is_forbidden() {
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(5));
        let test = LitmusTest::new("inf", program, outcome).unwrap();
        assert!(!MonolithicSatChecker::new().is_allowed(&weakest(), &test));
    }
}
