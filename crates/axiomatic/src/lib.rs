//! # mcm-axiomatic
//!
//! The happens-before semantics of the paper's class of memory models
//! (§2.2) and three independent admissibility checkers:
//!
//! * [`ExplicitChecker`] — enumerates read-from maps ([`rf`]) and coherence
//!   orders ([`co`]), builds the forced happens-before edges ([`hb`]) and
//!   decides by cycle detection ([`graph`]);
//! * [`SatChecker`] — the paper's §4.1 architecture: read-from maps are
//!   enumerated, the rest of the axioms become CNF over ordering variables
//!   solved by `mcm-sat` (the MiniSat substitute);
//! * [`MonolithicSatChecker`] — a single SAT query per test, with
//!   read-from selector variables.
//!
//! All three agree by construction and are cross-validated by property
//! tests; the exploration layer uses the explicit checker for speed and the
//! SAT checkers for fidelity to the paper.
//!
//! ## Example
//!
//! Store buffering is forbidden under SC but allowed once nothing keeps a
//! write ordered before a program-later read:
//!
//! ```
//! use mcm_axiomatic::{Checker, ExplicitChecker};
//! use mcm_core::{Formula, LitmusTest, Loc, MemoryModel, Outcome, Program, Reg, ThreadId, Value};
//!
//! # fn main() -> Result<(), mcm_core::CoreError> {
//! let program = Program::builder()
//!     .thread().write(Loc::X, Value(1)).read(Loc::Y, Reg(1))
//!     .thread().write(Loc::Y, Value(1)).read(Loc::X, Reg(2))
//!     .build()?;
//! let outcome = Outcome::new()
//!     .constrain(ThreadId(0), Reg(1), Value(0))
//!     .constrain(ThreadId(1), Reg(2), Value(0));
//! let sb = LitmusTest::new("SB", program, outcome)?;
//!
//! let sc = MemoryModel::new("SC", Formula::always());
//! let weakest = MemoryModel::new("weakest", Formula::never());
//! let checker = ExplicitChecker::new();
//! assert!(!checker.is_allowed(&sc, &sb));
//! assert!(checker.is_allowed(&weakest, &sb));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod checker;
pub mod co;
pub mod explain;
mod explicit;
pub mod graph;
pub mod hb;
pub mod rf;
pub mod sat_common;
mod sat_full;
mod sat_hb;

pub use batch::{BatchChecker, BatchExplicitChecker, BatchSatChecker, BatchStats};
pub use checker::{Checker, CheckerKind, Verdict, Witness};
pub use explicit::ExplicitChecker;
pub use hb::EdgeKind;
pub use sat_common::{ClauseSink, GuardedSink, OrderVars};
pub use sat_full::MonolithicSatChecker;
pub use sat_hb::{encode_all_cnf, encode_cnf, SatChecker};

/// All built-in per-cell checkers, for cross-validation loops.
#[must_use]
pub fn all_checkers() -> Vec<Box<dyn Checker>> {
    CheckerKind::ALL.iter().map(|kind| kind.build()).collect()
}

/// All built-in batched checkers (native where available, per-cell
/// adapters otherwise), for cross-validation loops over whole model rows.
#[must_use]
pub fn all_batch_checkers() -> Vec<Box<dyn BatchChecker>> {
    CheckerKind::ALL
        .iter()
        .map(|kind| kind.build_batch())
        .collect()
}
