//! Tiny dense digraphs over at most 64 nodes.
//!
//! Executions are bounded by [`mcm_core::MAX_EVENTS`] events, so adjacency
//! fits in one `u64` per node and transitive closure is a few dozen word
//! operations — well suited to the millions of acyclicity queries the
//! exploration layer performs.

/// A directed graph on nodes `0..n` (`n <= 64`) with bitmask adjacency.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DenseGraph {
    n: usize,
    /// Bit `j` of `succ[i]`: edge `i -> j`.
    succ: Vec<u64>,
}

impl DenseGraph {
    /// An edgeless graph on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n <= 64, "DenseGraph supports at most 64 nodes");
        DenseGraph {
            n,
            succ: vec![0; n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the edge `from -> to` (self-loops allowed; they make the graph
    /// cyclic, which is sometimes the point).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        debug_assert!(from < self.n && to < self.n);
        self.succ[from] |= 1u64 << to;
    }

    /// Whether the edge `from -> to` is present.
    #[must_use]
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.succ[from] >> to & 1 == 1
    }

    /// Successor mask of `from`.
    #[must_use]
    pub fn successors(&self, from: usize) -> u64 {
        self.succ[from]
    }

    /// All edges, in `(from, to)` lexicographic order.
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for from in 0..self.n {
            let mut mask = self.succ[from];
            while mask != 0 {
                let to = mask.trailing_zeros() as usize;
                out.push((from, to));
                mask &= mask - 1;
            }
        }
        out
    }

    /// The transitive closure (reachability by one or more edges).
    #[must_use]
    pub fn transitive_closure(&self) -> DenseGraph {
        let mut reach = self.succ.clone();
        for k in 0..self.n {
            let reach_k = reach[k];
            for r in reach.iter_mut() {
                if *r >> k & 1 == 1 {
                    *r |= reach_k;
                }
            }
        }
        DenseGraph {
            n: self.n,
            succ: reach,
        }
    }

    /// Whether the graph contains a directed cycle.
    #[must_use]
    pub fn has_cycle(&self) -> bool {
        let closure = self.transitive_closure();
        (0..self.n).any(|i| closure.has_edge(i, i))
    }

    /// A topological order of the nodes, or `None` if cyclic.
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indegree = vec![0usize; self.n];
        for from in 0..self.n {
            let mut mask = self.succ[from];
            while mask != 0 {
                let to = mask.trailing_zeros() as usize;
                indegree[to] += 1;
                mask &= mask - 1;
            }
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(node) = queue.pop() {
            order.push(node);
            let mut mask = self.succ[node];
            while mask != 0 {
                let to = mask.trailing_zeros() as usize;
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    queue.push(to);
                }
                mask &= mask - 1;
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// One directed cycle (as a node sequence), if any — used for witness
    /// output when a test is forbidden.
    #[must_use]
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        // DFS with colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.n];
        let mut parent = vec![usize::MAX; self.n];
        for root in 0..self.n {
            if colour[root] != Colour::White {
                continue;
            }
            // Iterative DFS: stack of (node, successor mask remaining).
            let mut stack: Vec<(usize, u64)> = vec![(root, self.succ[root])];
            colour[root] = Colour::Grey;
            while let Some((node, mask)) = stack.last_mut() {
                if *mask == 0 {
                    colour[*node] = Colour::Black;
                    stack.pop();
                    continue;
                }
                let next = mask.trailing_zeros() as usize;
                *mask &= *mask - 1;
                let node = *node;
                match colour[next] {
                    Colour::White => {
                        parent[next] = node;
                        colour[next] = Colour::Grey;
                        stack.push((next, self.succ[next]));
                    }
                    Colour::Grey => {
                        // Found a cycle: walk parents from `node` to `next`.
                        let mut cycle = vec![next];
                        let mut cur = node;
                        while cur != next {
                            cycle.push(cur);
                            cur = parent[cur];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Colour::Black => {}
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_and_cycles() {
        let mut g = DenseGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!g.has_cycle());
        let closure = g.transitive_closure();
        assert!(closure.has_edge(0, 2));
        assert!(!closure.has_edge(2, 0));
        g.add_edge(2, 0);
        assert!(g.has_cycle());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DenseGraph::new(2);
        g.add_edge(1, 1);
        assert!(g.has_cycle());
        assert_eq!(g.find_cycle(), Some(vec![1]));
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut g = DenseGraph::new(5);
        g.add_edge(3, 1);
        g.add_edge(1, 4);
        g.add_edge(0, 4);
        let order = g.topological_order().unwrap();
        let pos = |x: usize| order.iter().position(|&n| n == x).unwrap();
        assert!(pos(3) < pos(1));
        assert!(pos(1) < pos(4));
        assert!(pos(0) < pos(4));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn cyclic_graph_has_no_topological_order() {
        let mut g = DenseGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn find_cycle_returns_an_actual_cycle() {
        let mut g = DenseGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 1);
        g.add_edge(4, 5);
        let cycle = g.find_cycle().expect("cycle exists");
        assert!(cycle.len() >= 2);
        for i in 0..cycle.len() {
            let from = cycle[i];
            let to = cycle[(i + 1) % cycle.len()];
            assert!(g.has_edge(from, to), "edge {from}->{to} missing in cycle");
        }
    }

    #[test]
    fn edges_lists_every_edge_once() {
        let mut g = DenseGraph::new(3);
        g.add_edge(0, 2);
        g.add_edge(2, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edges(), vec![(0, 1), (0, 2), (2, 1)]);
    }

    #[test]
    fn empty_graph_behaves() {
        let g = DenseGraph::new(0);
        assert!(g.is_empty());
        assert!(!g.has_cycle());
        assert_eq!(g.topological_order(), Some(vec![]));
        assert_eq!(g.find_cycle(), None);
    }
}
