//! SAT-based checker with read-from maps enumerated outside the solver.
//!
//! This mirrors the paper's tool (§4.1): for each value-consistent
//! read-from map, the happens-before axioms become a CNF over ordering
//! variables and a SAT solver decides whether an acyclic happens-before
//! relation exists. The same encoding can be exported as DIMACS for
//! cross-checking with external solvers ([`encode_cnf`]).

use mcm_core::{Execution, MemoryModel};
use mcm_sat::dimacs::Cnf;
use mcm_sat::{SatResult, Solver};

use crate::checker::{Checker, Verdict, Witness};
use crate::hb::required_edges;
use crate::rf::{enumerate_rf_maps, RfMap, RfSource};
use crate::sat_common::{ClauseSink, OrderVars};

/// Emits the complete encoding for one read-from map into `sink`:
/// partial-order scaffolding, model clauses, and the read-from axioms.
/// Returns `None` when the map is inconsistent outright (a read of the
/// initial value po-after a local same-location write).
fn encode<S: ClauseSink>(
    sink: &mut S,
    model: &MemoryModel,
    exec: &Execution,
    rf: &RfMap,
) -> Option<OrderVars> {
    let n = exec.events().len();
    let order = OrderVars::new(sink, n);
    order.add_partial_order_clauses(sink);
    order.add_model_clauses(sink, model, exec);

    for &(read, source) in &rf.pairs {
        let loc = exec.event(read).loc().expect("read has a location");
        match source {
            RfSource::Init => {
                // Read-write axiom, no-source case: the read is forced
                // before every same-location write. A forced ordering
                // towards a program-earlier local write violates
                // ignore-local outright (a read cannot skip an earlier
                // local write by taking the initial value).
                for w in exec.writes_to(loc) {
                    if exec.po_earlier(w.id, read) {
                        return None;
                    }
                    sink.emit_clause(&[order.before(read.index(), w.id.index())]);
                }
            }
            RfSource::Write(z) => {
                // Write-read axiom: only across threads.
                if !exec.same_thread(z, read) {
                    sink.emit_clause(&[order.before(z.index(), read.index())]);
                }
                // Read-write axiom: for every other same-location write y,
                // either y is coherence-before z or the read is forced
                // before y. The second option is unavailable when y is a
                // program-earlier local write (ignore-local), leaving the
                // coherence obligation.
                for w in exec.writes_to(loc) {
                    if w.id == z {
                        continue;
                    }
                    let coherence_before = order.before(w.id.index(), z.index());
                    if exec.po_earlier(w.id, read) {
                        sink.emit_clause(&[coherence_before]);
                    } else {
                        sink.emit_clause(&[
                            coherence_before,
                            order.before(read.index(), w.id.index()),
                        ]);
                    }
                }
            }
        }
    }
    Some(order)
}

/// Exports the admissibility query for one read-from map as DIMACS CNF:
/// satisfiable iff the execution is allowed with that map. Returns `None`
/// when the map is inconsistent outright (trivially forbidden).
#[must_use]
pub fn encode_cnf(model: &MemoryModel, exec: &Execution, rf: &RfMap) -> Option<Cnf> {
    let mut cnf = Cnf::default();
    encode(&mut cnf, model, exec, rf)?;
    Some(cnf)
}

/// Exports one CNF per value-consistent read-from map; the execution is
/// allowed iff at least one of them is satisfiable.
#[must_use]
pub fn encode_all_cnf(model: &MemoryModel, exec: &Execution) -> Vec<Cnf> {
    enumerate_rf_maps(exec)
        .iter()
        .filter_map(|rf| encode_cnf(model, exec, rf))
        .collect()
}

/// Admissibility via one SAT query per read-from map.
#[derive(Clone, Debug, Default)]
pub struct SatChecker {
    /// Work counters totalled across every query (one solver per
    /// read-from map); interior mutability because [`Checker`] methods
    /// take `&self`.
    stats: std::cell::Cell<mcm_sat::SolverStats>,
}

impl SatChecker {
    /// Creates the checker.
    #[must_use]
    pub fn new() -> Self {
        SatChecker::default()
    }

    fn absorb_stats(&self, solver: &Solver) {
        let mut total = self.stats.get();
        total.absorb(solver.stats());
        self.stats.set(total);
    }

    fn check_rf(&self, model: &MemoryModel, exec: &Execution, rf: &RfMap) -> Option<Witness> {
        let mut solver = Solver::new();
        let order = encode(&mut solver, model, exec, rf)?;
        let result = solver.solve();
        self.absorb_stats(&solver);
        if result == SatResult::Sat {
            let co = order.extract_co(&solver, exec);
            let edges = required_edges(model, exec, rf, &co);
            debug_assert!(edges.admits_partial_order(exec));
            Some(Witness {
                rf: rf.clone(),
                co,
                hb_edges: edges.labeled,
            })
        } else {
            None
        }
    }
}

impl Checker for SatChecker {
    fn name(&self) -> &'static str {
        "sat"
    }

    fn check_execution(&self, model: &MemoryModel, exec: &Execution) -> Verdict {
        for rf in enumerate_rf_maps(exec) {
            if let Some(witness) = self.check_rf(model, exec, &rf) {
                return Verdict::allowed(witness);
            }
        }
        Verdict::forbidden()
    }

    fn solver_stats(&self) -> Option<mcm_sat::SolverStats> {
        Some(self.stats.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::{Formula, LitmusTest, Loc, Outcome, Program, Reg, ThreadId, Value};

    fn sc() -> MemoryModel {
        MemoryModel::new("SC", Formula::always())
    }

    fn weakest() -> MemoryModel {
        MemoryModel::new("weakest", Formula::never())
    }

    fn mp() -> LitmusTest {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .write(Loc::Y, Value(1))
            .thread()
            .read(Loc::Y, Reg(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(ThreadId(1), Reg(1), Value(1))
            .constrain(ThreadId(1), Reg(2), Value(0));
        LitmusTest::new("MP", program, outcome).unwrap()
    }

    #[test]
    fn mp_under_sc_and_weakest() {
        let checker = SatChecker::new();
        assert!(!checker.is_allowed(&sc(), &mp()));
        assert!(checker.is_allowed(&weakest(), &mp()));
    }

    #[test]
    fn solver_stats_accumulate_across_queries() {
        let checker = SatChecker::new();
        assert_eq!(checker.solver_stats(), Some(mcm_sat::SolverStats::default()));
        let _ = checker.check(&sc(), &mp());
        let after_one = checker.solver_stats().expect("sat-backed");
        assert!(after_one.propagations > 0);
        let _ = checker.check(&weakest(), &mp());
        let after_two = checker.solver_stats().expect("sat-backed");
        assert!(after_two.propagations > after_one.propagations);
        // The explicit checker has no solver.
        assert!(crate::ExplicitChecker::new().solver_stats().is_none());
    }

    #[test]
    fn witnesses_are_valid() {
        let checker = SatChecker::new();
        let verdict = checker.check(&weakest(), &mp());
        let witness = verdict.witness.expect("allowed");
        // The witness coherence order covers both written locations.
        assert_eq!(witness.co.per_loc.len(), 2);
    }

    #[test]
    fn local_coherence_is_enforced() {
        // W X=1; R X=0 forbidden even under the weakest model.
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(0));
        let test = LitmusTest::new("local", program, outcome).unwrap();
        assert!(!SatChecker::new().is_allowed(&weakest(), &test));
    }

    #[test]
    fn exported_cnf_matches_the_solver_verdict() {
        use crate::rf::enumerate_rf_maps;
        for (model, test) in [
            (sc(), mp()),
            (weakest(), mp()),
        ] {
            let exec = test.execution();
            let mut any_sat = false;
            for rf in enumerate_rf_maps(&exec) {
                if let Some(cnf) = encode_cnf(&model, &exec, &rf) {
                    let mut solver = cnf.into_solver();
                    if solver.solve() == SatResult::Sat {
                        any_sat = true;
                    }
                }
            }
            assert_eq!(
                any_sat,
                SatChecker::new().is_allowed(&model, &test),
                "CNF export disagrees for {} on {}",
                model.name(),
                test.name()
            );
        }
    }

    #[test]
    fn dimacs_round_trip_preserves_the_query() {
        let test = mp();
        let exec = test.execution();
        let cnfs = encode_all_cnf(&sc(), &exec);
        assert!(!cnfs.is_empty());
        for cnf in cnfs {
            let text = cnf.to_dimacs();
            let reparsed = mcm_sat::dimacs::parse_dimacs(&text).unwrap();
            assert_eq!(cnf, reparsed);
        }
    }
}
