//! Shared CNF scaffolding for the SAT-based checkers.
//!
//! Both SAT checkers encode an auxiliary strict partial order `o(x, y)`
//! that must *contain* every forced happens-before edge; such an order
//! exists iff the forced edge set is acyclic, which is the paper's
//! admissibility condition. Clauses shared by both encodings:
//!
//! * antisymmetry — `¬o(x,y) ∨ ¬o(y,x)`;
//! * transitivity — `o(x,y) ∧ o(y,k) → o(x,k)`;
//! * program order — unit `o(x,y)` when `F(x,y)` and `x` po-before `y`;
//! * write-write — same-location write pairs are ordered: a *same-thread*
//!   pair is forced into program order (the write-write axiom orders the
//!   pair directly and ignore-local rules out the backward direction);
//!   cross-thread pairs get the free disjunction `o(x,y) ∨ o(y,x)`.
//!
//! The restriction of `o` to same-location writes doubles as the coherence
//! order, which is how the read-from axioms (added per checker) refer to
//! it. Ignore-local is *not* a blanket `¬o(y,x)` over program-ordered
//! pairs: only directly forced orderings must respect program order (see
//! `hb.rs` on Figure 1), and those cases are handled where the forcing
//! clause is emitted.

use mcm_core::{EventId, Execution, MemoryModel};
use mcm_sat::dimacs::Cnf;
use mcm_sat::{Lit, Solver, Var};

use crate::rf::RfSource;

/// Anything clauses can be emitted into: a live solver, or a [`Cnf`] for
/// DIMACS export. Exposed so other crates (the synthesis engine) can
/// reuse the ordering-variable scaffolding with either backend.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn fresh_var(&mut self) -> Var;
    /// Adds a clause (a disjunction of literals).
    fn emit_clause(&mut self, lits: &[Lit]);
}

impl ClauseSink for Solver {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }

    fn emit_clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
    }
}

impl ClauseSink for Cnf {
    fn fresh_var(&mut self) -> Var {
        let var = Var::from_index(self.num_vars);
        self.num_vars += 1;
        var
    }

    fn emit_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }
}

/// The `o(x, y)` ordering-variable table over `n` events (or, in the
/// synthesis engine, `n` skeleton slots).
#[derive(Clone, Debug)]
pub struct OrderVars {
    n: usize,
    vars: Vec<Option<Var>>,
}

impl OrderVars {
    /// Allocates `n·(n-1)` ordering variables in `sink`.
    ///
    /// The caller typically follows with
    /// [`OrderVars::add_partial_order_clauses`].
    pub fn new<S: ClauseSink>(sink: &mut S, n: usize) -> Self {
        let mut vars = vec![None; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    vars[i * n + j] = Some(sink.fresh_var());
                }
            }
        }
        OrderVars { n, vars }
    }

    /// The positive literal of `o(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (the relation is irreflexive by construction).
    pub fn before(&self, i: usize, j: usize) -> Lit {
        self.vars[i * self.n + j]
            .expect("o(i,i) does not exist")
            .positive()
    }

    /// Adds antisymmetry and transitivity clauses.
    pub fn add_partial_order_clauses<S: ClauseSink>(&self, solver: &mut S) {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                solver.emit_clause(&[!self.before(i, j), !self.before(j, i)]);
            }
        }
        for i in 0..self.n {
            for j in 0..self.n {
                if j == i {
                    continue;
                }
                for k in 0..self.n {
                    if k == i || k == j {
                        continue;
                    }
                    solver.emit_clause(&[
                        !self.before(i, j),
                        !self.before(j, k),
                        self.before(i, k),
                    ]);
                }
            }
        }
    }

    /// Adds the model-dependent program-order units and the write-write
    /// (coherence) constraints.
    pub fn add_model_clauses<S: ClauseSink>(
        &self,
        solver: &mut S,
        model: &MemoryModel,
        exec: &Execution,
    ) {
        self.add_program_order_units(solver, model, exec);
        self.add_coherence_clauses(solver, exec);
    }

    /// Adds only the model-dependent part of [`OrderVars::add_model_clauses`]:
    /// a unit `o(x, y)` for every same-thread pair the must-not-reorder
    /// function forces. On a concrete execution every formula atom is a
    /// constant, so this *is* the model formula's (degenerate) Tseitin
    /// encoding over the pair — wrap the sink in a [`GuardedSink`] to emit
    /// it selected by an assumption literal instead of asserted outright.
    pub fn add_program_order_units<S: ClauseSink>(
        &self,
        solver: &mut S,
        model: &MemoryModel,
        exec: &Execution,
    ) {
        for t in 0..exec.num_threads() {
            let events = exec.thread_events(mcm_core::ThreadId(t as u8));
            for (a, &x) in events.iter().enumerate() {
                for &y in &events[a + 1..] {
                    if model.must_not_reorder(exec, x, y) {
                        solver.emit_clause(&[self.before(x.index(), y.index())]);
                    }
                }
            }
        }
    }

    /// Adds only the model-independent write-write (coherence) part of
    /// [`OrderVars::add_model_clauses`]: same-location writes are totally
    /// ordered, respecting program order within a thread.
    pub fn add_coherence_clauses<S: ClauseSink>(&self, solver: &mut S, exec: &Execution) {
        let writes: Vec<_> = exec.writes().collect();
        for (a, w1) in writes.iter().enumerate() {
            for w2 in &writes[a + 1..] {
                if w1.loc() != w2.loc() {
                    continue;
                }
                let (i, j) = (w1.id.index(), w2.id.index());
                if exec.po_earlier(w1.id, w2.id) {
                    // Same thread: coherence must follow program order.
                    solver.emit_clause(&[self.before(i, j)]);
                } else if exec.po_earlier(w2.id, w1.id) {
                    solver.emit_clause(&[self.before(j, i)]);
                } else {
                    solver.emit_clause(&[self.before(i, j), self.before(j, i)]);
                }
            }
        }
    }

    /// Reads the coherence order out of a satisfying assignment: the writes
    /// of each location sorted by the `o` relation.
    pub fn extract_co(&self, solver: &Solver, exec: &Execution) -> crate::co::CoOrder {
        let mut locs: Vec<_> = exec.writes().filter_map(|w| w.loc()).collect();
        locs.sort();
        locs.dedup();
        let per_loc = locs
            .into_iter()
            .map(|loc| {
                let mut writes: Vec<_> = exec.writes_to(loc).map(|w| w.id).collect();
                writes.sort_by(|a, b| {
                    if a == b {
                        std::cmp::Ordering::Equal
                    } else if solver.lit_value_opt(self.before(a.index(), b.index()))
                        == Some(true)
                    {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                });
                (loc, writes)
            })
            .collect();
        crate::co::CoOrder { per_loc }
    }
}

/// A [`ClauseSink`] adapter that guards every emitted clause with an
/// activation literal: `emit_clause(C)` becomes `¬g ∨ C`.
///
/// Guarded clauses are inert until the guard is assumed true in a
/// [`Solver::solve_with_assumptions`] call — the same selection trick
/// `mcm-synth`'s activation ladders use to serve every test shape from one
/// incremental solver. The batched SAT checker uses it to load each
/// model's must-not-reorder units into one shared per-test encoding and
/// select one model per query, keeping learnt clauses across the row.
pub struct GuardedSink<'a, S: ClauseSink> {
    inner: &'a mut S,
    guard: Lit,
}

impl<'a, S: ClauseSink> GuardedSink<'a, S> {
    /// Wraps `inner` so every clause is conditioned on `guard`.
    pub fn new(inner: &'a mut S, guard: Lit) -> Self {
        GuardedSink { inner, guard }
    }
}

impl<S: ClauseSink> ClauseSink for GuardedSink<'_, S> {
    fn fresh_var(&mut self) -> Var {
        self.inner.fresh_var()
    }

    fn emit_clause(&mut self, lits: &[Lit]) {
        let mut clause = Vec::with_capacity(lits.len() + 1);
        clause.push(!self.guard);
        clause.extend_from_slice(lits);
        self.inner.emit_clause(&clause);
    }
}

/// Allocates read-from selector variables and emits the write-read /
/// read-write axioms conditioned on them — the model-independent read-from
/// layer shared by [`crate::MonolithicSatChecker`] and the batched SAT
/// checker. Returns one selector literal per candidate source, parallel to
/// `candidates`:
///
/// * exactly one selector per read is true;
/// * selecting the initial value puts the read before every same-location
///   write (a program-earlier local write rules the selector out outright:
///   ignore-local);
/// * selecting a write `z` orders `z` before the read when cross-thread,
///   and every other same-location write either coherence-before `z` or
///   (unless ignore-local forbids it) after the read.
pub fn add_rf_selector_clauses<S: ClauseSink>(
    sink: &mut S,
    exec: &Execution,
    order: &OrderVars,
    candidates: &[(EventId, Vec<RfSource>)],
) -> Vec<Vec<Lit>> {
    let selectors: Vec<Vec<Lit>> = candidates
        .iter()
        .map(|(_, sources)| {
            sources
                .iter()
                .map(|_| sink.fresh_var().positive())
                .collect()
        })
        .collect();

    for ((read, sources), sel) in candidates.iter().zip(&selectors) {
        // Exactly one source per read.
        sink.emit_clause(sel);
        for a in 0..sel.len() {
            for b in (a + 1)..sel.len() {
                sink.emit_clause(&[!sel[a], !sel[b]]);
            }
        }
        let loc = exec.event(*read).loc().expect("read has a location");
        for (&lit, &source) in sel.iter().zip(sources.iter()) {
            match source {
                RfSource::Init => {
                    // Selecting init puts the read before every
                    // same-location write; if one of them is a
                    // program-earlier local write that forced ordering
                    // would violate ignore-local, so the selector is
                    // unusable.
                    for w in exec.writes_to(loc) {
                        if exec.po_earlier(w.id, *read) {
                            sink.emit_clause(&[!lit]);
                        } else {
                            sink.emit_clause(&[
                                !lit,
                                order.before(read.index(), w.id.index()),
                            ]);
                        }
                    }
                }
                RfSource::Write(z) => {
                    if !exec.same_thread(z, *read) {
                        sink.emit_clause(&[!lit, order.before(z.index(), read.index())]);
                    }
                    for w in exec.writes_to(loc) {
                        if w.id == z {
                            continue;
                        }
                        let coherence_before = order.before(w.id.index(), z.index());
                        if exec.po_earlier(w.id, *read) {
                            // The from-read branch would point backwards
                            // in program order: coherence must resolve it.
                            sink.emit_clause(&[!lit, coherence_before]);
                        } else {
                            sink.emit_clause(&[
                                !lit,
                                coherence_before,
                                order.before(read.index(), w.id.index()),
                            ]);
                        }
                    }
                }
            }
        }
    }
    selectors
}

/// Reads the read-from map out of a satisfying assignment: for each read,
/// the source whose selector literal (as allocated by
/// [`add_rf_selector_clauses`]) is true.
///
/// # Panics
///
/// Panics if no selector of some read is true — the exactly-one clauses
/// make that impossible in a satisfying assignment.
#[must_use]
pub fn extract_rf(
    solver: &Solver,
    candidates: &[(EventId, Vec<RfSource>)],
    selectors: &[Vec<Lit>],
) -> crate::rf::RfMap {
    let pairs = candidates
        .iter()
        .zip(selectors)
        .map(|((read, sources), sel)| {
            let chosen = sel
                .iter()
                .position(|&lit| solver.lit_value_opt(lit) == Some(true))
                .expect("exactly-one selector is true");
            (*read, sources[chosen])
        })
        .collect();
    crate::rf::RfMap { pairs }
}
