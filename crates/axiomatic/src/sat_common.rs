//! Shared CNF scaffolding for the SAT-based checkers.
//!
//! Both SAT checkers encode an auxiliary strict partial order `o(x, y)`
//! that must *contain* every forced happens-before edge; such an order
//! exists iff the forced edge set is acyclic, which is the paper's
//! admissibility condition. Clauses shared by both encodings:
//!
//! * antisymmetry — `¬o(x,y) ∨ ¬o(y,x)`;
//! * transitivity — `o(x,y) ∧ o(y,k) → o(x,k)`;
//! * program order — unit `o(x,y)` when `F(x,y)` and `x` po-before `y`;
//! * write-write — same-location write pairs are ordered: a *same-thread*
//!   pair is forced into program order (the write-write axiom orders the
//!   pair directly and ignore-local rules out the backward direction);
//!   cross-thread pairs get the free disjunction `o(x,y) ∨ o(y,x)`.
//!
//! The restriction of `o` to same-location writes doubles as the coherence
//! order, which is how the read-from axioms (added per checker) refer to
//! it. Ignore-local is *not* a blanket `¬o(y,x)` over program-ordered
//! pairs: only directly forced orderings must respect program order (see
//! `hb.rs` on Figure 1), and those cases are handled where the forcing
//! clause is emitted.

use mcm_core::{Execution, MemoryModel};
use mcm_sat::dimacs::Cnf;
use mcm_sat::{Lit, Solver, Var};

/// Anything clauses can be emitted into: a live solver, or a [`Cnf`] for
/// DIMACS export. Exposed so other crates (the synthesis engine) can
/// reuse the ordering-variable scaffolding with either backend.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn fresh_var(&mut self) -> Var;
    /// Adds a clause (a disjunction of literals).
    fn emit_clause(&mut self, lits: &[Lit]);
}

impl ClauseSink for Solver {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }

    fn emit_clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
    }
}

impl ClauseSink for Cnf {
    fn fresh_var(&mut self) -> Var {
        let var = Var::from_index(self.num_vars);
        self.num_vars += 1;
        var
    }

    fn emit_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }
}

/// The `o(x, y)` ordering-variable table over `n` events (or, in the
/// synthesis engine, `n` skeleton slots).
#[derive(Clone, Debug)]
pub struct OrderVars {
    n: usize,
    vars: Vec<Option<Var>>,
}

impl OrderVars {
    /// Allocates `n·(n-1)` ordering variables in `sink`.
    ///
    /// The caller typically follows with
    /// [`OrderVars::add_partial_order_clauses`].
    pub fn new<S: ClauseSink>(sink: &mut S, n: usize) -> Self {
        let mut vars = vec![None; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    vars[i * n + j] = Some(sink.fresh_var());
                }
            }
        }
        OrderVars { n, vars }
    }

    /// The positive literal of `o(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (the relation is irreflexive by construction).
    pub fn before(&self, i: usize, j: usize) -> Lit {
        self.vars[i * self.n + j]
            .expect("o(i,i) does not exist")
            .positive()
    }

    /// Adds antisymmetry and transitivity clauses.
    pub fn add_partial_order_clauses<S: ClauseSink>(&self, solver: &mut S) {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                solver.emit_clause(&[!self.before(i, j), !self.before(j, i)]);
            }
        }
        for i in 0..self.n {
            for j in 0..self.n {
                if j == i {
                    continue;
                }
                for k in 0..self.n {
                    if k == i || k == j {
                        continue;
                    }
                    solver.emit_clause(&[
                        !self.before(i, j),
                        !self.before(j, k),
                        self.before(i, k),
                    ]);
                }
            }
        }
    }

    /// Adds the model-dependent program-order units and the write-write
    /// (coherence) constraints.
    pub fn add_model_clauses<S: ClauseSink>(
        &self,
        solver: &mut S,
        model: &MemoryModel,
        exec: &Execution,
    ) {
        for t in 0..exec.num_threads() {
            let events = exec.thread_events(mcm_core::ThreadId(t as u8));
            for (a, &x) in events.iter().enumerate() {
                for &y in &events[a + 1..] {
                    if model.must_not_reorder(exec, x, y) {
                        solver.emit_clause(&[self.before(x.index(), y.index())]);
                    }
                }
            }
        }
        let writes: Vec<_> = exec.writes().collect();
        for (a, w1) in writes.iter().enumerate() {
            for w2 in &writes[a + 1..] {
                if w1.loc() != w2.loc() {
                    continue;
                }
                let (i, j) = (w1.id.index(), w2.id.index());
                if exec.po_earlier(w1.id, w2.id) {
                    // Same thread: coherence must follow program order.
                    solver.emit_clause(&[self.before(i, j)]);
                } else if exec.po_earlier(w2.id, w1.id) {
                    solver.emit_clause(&[self.before(j, i)]);
                } else {
                    solver.emit_clause(&[self.before(i, j), self.before(j, i)]);
                }
            }
        }
    }

    /// Reads the coherence order out of a satisfying assignment: the writes
    /// of each location sorted by the `o` relation.
    pub fn extract_co(&self, solver: &Solver, exec: &Execution) -> crate::co::CoOrder {
        let mut locs: Vec<_> = exec.writes().filter_map(|w| w.loc()).collect();
        locs.sort();
        locs.dedup();
        let per_loc = locs
            .into_iter()
            .map(|loc| {
                let mut writes: Vec<_> = exec.writes_to(loc).map(|w| w.id).collect();
                writes.sort_by(|a, b| {
                    if a == b {
                        std::cmp::Ordering::Equal
                    } else if solver.lit_value_opt(self.before(a.index(), b.index()))
                        == Some(true)
                    {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                });
                (loc, writes)
            })
            .collect();
        crate::co::CoOrder { per_loc }
    }
}
