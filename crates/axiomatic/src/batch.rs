//! Test-major batched admissibility: one test, many models, shared work.
//!
//! A model-space sweep asks the same test against every model of a row,
//! and almost all of the per-cell cost is model-independent: the explicit
//! checker re-enumerates read-from maps and coherence orders for each of
//! the 36 (or 90) models, and each SAT query rebuilds the partial-order
//! scaffolding, coherence and read-from clauses from scratch, even though
//! only the model's must-not-reorder formula differs across the row. The
//! [`BatchChecker`] interface turns the core test-major:
//!
//! * [`BatchExplicitChecker`] enumerates the per-test execution space —
//!   read-from maps, coherence orders and each candidate's model-free
//!   forced edges ([`crate::hb::base_edges`]) — **once**, and evaluates
//!   each model against the shared candidates. Models whose formulas
//!   force the same program-order pairs on this execution (a very common
//!   collapse: fence or dependency clauses are inert on most tests) share
//!   one *group*, so the per-candidate work is one ignore-local check
//!   plus one cheap graph union per still-undecided group.
//! * [`BatchSatChecker`] builds **one** incremental SAT encoding per test
//!   — ordering variables, coherence, read-from selectors — and loads
//!   each group's program-order units guarded by an activation literal
//!   ([`crate::sat_common::GuardedSink`]). One
//!   [`mcm_sat::Solver::solve_with_assumptions`] call per group answers
//!   the row, with learnt clauses carried from model to model: the same
//!   selection trick `mcm-synth`'s activation ladders use to serve every
//!   test shape from one solver. (On a concrete execution the formula's
//!   atoms are constants, so the guarded units *are* its Tseitin encoding
//!   restricted to this test.)
//!
//! Every per-cell [`Checker`] doubles as a [`BatchChecker`] through a
//! blanket adapter that simply loops over the row — that is what the
//! sweep engine's old call sites, `mcm-synth`'s oracle and the
//! cross-validation suites keep using, and what the batched paths are
//! property-tested against.

use std::cell::Cell;
use std::collections::HashMap;

use mcm_core::{EventId, Execution, LitmusTest, MemoryModel};
use mcm_sat::{SatResult, Solver, SolverStats};

use crate::checker::{Checker, Verdict, Witness};
use crate::co::enumerate_co_orders;
use crate::hb::{base_edges, forced_po_pairs, required_edges};
use crate::rf::{enumerate_rf_maps, read_candidates};
use crate::sat_common::{
    add_rf_selector_clauses, extract_rf, ClauseSink, GuardedSink, OrderVars,
};

/// Work counters of a batched checker: how much per-test work was shared
/// across a row of models. Totals cover every row the instance answered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Rows answered: one per `check_all` / `check_all_executions` call.
    pub rows: u64,
    /// Model verdicts produced across all rows.
    pub models_checked: u64,
    /// Distinct forced-program-order groups evaluated (summed over rows).
    /// `models_checked / model_groups` is the row collapse factor.
    pub model_groups: u64,
    /// Shared `(rf, co)` candidate executions enumerated (explicit path)
    /// — enumerated once per row instead of once per cell.
    pub shared_candidates: u64,
    /// Per-group acyclicity checks actually performed (explicit path).
    pub group_evals: u64,
    /// Assumption-selected solver queries (SAT path): one per group, on
    /// one shared encoding per row.
    pub assumption_solves: u64,
}

impl BatchStats {
    /// `models_checked / model_groups`: how many model verdicts each
    /// distinct forced-program-order group answered on average — the row
    /// collapse factor reports print (∞-free: 0 groups reports against 1).
    #[must_use]
    pub fn row_collapse(&self) -> f64 {
        self.models_checked as f64 / (self.model_groups.max(1)) as f64
    }

    /// Adds another counter set onto this one.
    pub fn absorb(&mut self, other: BatchStats) {
        self.rows += other.rows;
        self.models_checked += other.models_checked;
        self.model_groups += other.model_groups;
        self.shared_candidates += other.shared_candidates;
        self.group_evals += other.group_evals;
        self.assumption_solves += other.assumption_solves;
    }

    /// The counters as stable `(name, value)` pairs — the structured view
    /// serializable reports render from, so field names live in one place.
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("rows", self.rows),
            ("models_checked", self.models_checked),
            ("model_groups", self.model_groups),
            ("shared_candidates", self.shared_candidates),
            ("group_evals", self.group_evals),
            ("assumption_solves", self.assumption_solves),
        ]
    }
}

/// Records one answered row into the global metric registry: latency
/// into `mcm_check_latency_us{checker=…}` and the row's shared-work
/// unit count (explicit: candidate executions; SAT: assumption solves;
/// per-cell adapters: cells) into `mcm_check_candidates_total`.
/// No-op when `mcm_obs` instrumentation is disabled — the stopwatch
/// never started, so this costs one branch.
fn observe_row(checker: &'static str, started: mcm_obs::Stopwatch, candidates: u64) {
    if let Some(us) = started.elapsed_us() {
        mcm_obs::metrics::histogram("mcm_check_latency_us", &[("checker", checker)]).record(us);
        if candidates > 0 {
            mcm_obs::metrics::counter("mcm_check_candidates_total", &[("checker", checker)])
                .add(candidates);
        }
    }
}

/// An admissibility checker that answers a whole row of models against
/// one test, amortizing the model-independent work across the row.
///
/// Verdicts are returned in model order and agree bit-for-bit with the
/// per-cell [`Checker`] verdicts (the property suite enforces this).
pub trait BatchChecker {
    /// Short name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Decides admissibility of a pre-derived candidate execution under
    /// every model, in order.
    fn check_all_executions(&self, exec: &Execution, models: &[MemoryModel]) -> Vec<Verdict>;

    /// Decides admissibility of a litmus test under every model, in order.
    fn check_all(&self, test: &LitmusTest, models: &[MemoryModel]) -> Vec<Verdict> {
        self.check_all_executions(&test.execution(), models)
    }

    /// Accumulated amortization counters, for checkers that share work
    /// across a row. Per-cell adapters return `None` (the default).
    fn batch_stats(&self) -> Option<BatchStats> {
        None
    }

    /// Accumulated SAT-solver work counters, mirroring
    /// [`Checker::solver_stats`].
    fn solver_stats(&self) -> Option<SolverStats> {
        None
    }
}

/// Every per-cell checker is a batch checker that answers the row one
/// cell at a time — the thin adapter that keeps old call sites (and
/// `mcm-synth`'s oracle) working unchanged on the test-major engine.
impl<C: Checker> BatchChecker for C {
    fn name(&self) -> &'static str {
        Checker::name(self)
    }

    fn check_all_executions(&self, exec: &Execution, models: &[MemoryModel]) -> Vec<Verdict> {
        let started = mcm_obs::Stopwatch::start();
        let verdicts: Vec<Verdict> = models
            .iter()
            .map(|model| self.check_execution(model, exec))
            .collect();
        observe_row(Checker::name(self), started, models.len() as u64);
        verdicts
    }

    fn solver_stats(&self) -> Option<SolverStats> {
        Checker::solver_stats(self)
    }
}

/// The model row quotiented by forced program-order pairs: two models
/// whose formulas force the same same-thread orderings *on this
/// execution* are indistinguishable here and share every downstream
/// answer.
struct ModelGroups {
    /// One entry per group: the forced pairs and a representative model
    /// index (used to rebuild labeled witness edges).
    groups: Vec<(Vec<(EventId, EventId)>, usize)>,
    /// Model index → group index.
    group_of: Vec<usize>,
}

fn group_models(exec: &Execution, models: &[MemoryModel]) -> ModelGroups {
    let mut groups: Vec<(Vec<(EventId, EventId)>, usize)> = Vec::new();
    let mut index: HashMap<Vec<(EventId, EventId)>, usize> = HashMap::new();
    let mut group_of = Vec::with_capacity(models.len());
    for (m, model) in models.iter().enumerate() {
        let pairs = forced_po_pairs(model, exec);
        let group = *index.entry(pairs.clone()).or_insert_with(|| {
            groups.push((pairs, m));
            groups.len() - 1
        });
        group_of.push(group);
    }
    ModelGroups { groups, group_of }
}

/// Batched admissibility by `(rf, co)` enumeration shared across the row.
///
/// Produces exactly the per-cell [`crate::ExplicitChecker`] verdicts —
/// including the same witnesses, because candidates are visited in the
/// same order and each group is decided at its first admitting candidate.
#[derive(Clone, Debug, Default)]
pub struct BatchExplicitChecker {
    /// Amortization counters; interior mutability because the trait takes
    /// `&self` (mirrors the SAT checkers' stats cells).
    stats: Cell<BatchStats>,
}

impl BatchExplicitChecker {
    /// Creates the checker.
    #[must_use]
    pub fn new() -> Self {
        BatchExplicitChecker::default()
    }
}

impl BatchChecker for BatchExplicitChecker {
    fn name(&self) -> &'static str {
        "batch-explicit"
    }

    fn check_all_executions(&self, exec: &Execution, models: &[MemoryModel]) -> Vec<Verdict> {
        let started = mcm_obs::Stopwatch::start();
        let mut stats = self.stats.get();
        let candidates_before = stats.shared_candidates;
        stats.rows += 1;
        stats.models_checked += models.len() as u64;

        let rf_maps = enumerate_rf_maps(exec);
        if rf_maps.is_empty() {
            // Value-infeasible outcome: forbidden everywhere, no grouping
            // or coherence enumeration needed.
            self.stats.set(stats);
            observe_row(BatchChecker::name(self), started, 0);
            return models.iter().map(|_| Verdict::forbidden()).collect();
        }

        let ModelGroups { groups, group_of } = group_models(exec, models);
        stats.model_groups += groups.len() as u64;
        let co_orders = enumerate_co_orders(exec);

        let mut verdicts: Vec<Option<Verdict>> = vec![None; groups.len()];
        let mut undecided = groups.len();
        'candidates: for rf in &rf_maps {
            for co in &co_orders {
                stats.shared_candidates += 1;
                let base = base_edges(exec, rf, co);
                // Ignore-local is a property of the model-free edges only
                // (program-order edges always point forwards): one check
                // retires the candidate for the whole row.
                if !base.respects_ignore_local(exec) {
                    continue;
                }
                for (g, (pairs, rep)) in groups.iter().enumerate() {
                    if verdicts[g].is_some() {
                        continue;
                    }
                    stats.group_evals += 1;
                    if base.acyclic_with(pairs) {
                        // Rebuild the labeled edge set through the shared
                        // constructor so the witness matches the per-cell
                        // checker's exactly.
                        let edges = required_edges(&models[*rep], exec, rf, co);
                        verdicts[g] = Some(Verdict::allowed(Witness {
                            rf: rf.clone(),
                            co: co.clone(),
                            hb_edges: edges.labeled,
                        }));
                        undecided -= 1;
                    }
                }
                if undecided == 0 {
                    break 'candidates;
                }
            }
        }

        self.stats.set(stats);
        observe_row(
            BatchChecker::name(self),
            started,
            stats.shared_candidates - candidates_before,
        );
        group_of
            .iter()
            .map(|&g| verdicts[g].clone().unwrap_or_else(Verdict::forbidden))
            .collect()
    }

    fn batch_stats(&self) -> Option<BatchStats> {
        Some(self.stats.get())
    }
}

/// Batched admissibility via one incremental SAT encoding per test, with
/// each model group's program-order units selected by assumption
/// literals.
///
/// The base encoding mirrors [`crate::MonolithicSatChecker`] clause for
/// clause (partial order + coherence + read-from selectors); the only
/// model-dependent clauses are guarded units `¬g_i ∨ o(x, y)`, one
/// activation literal `g_i` per distinct forced-program-order group.
/// Solving the row is then one `solve_with_assumptions(&[g_i])` per
/// group on the same solver, so conflict clauses learnt for one model
/// prune the search for the next.
#[derive(Clone, Debug, Default)]
pub struct BatchSatChecker {
    stats: Cell<BatchStats>,
    solver_stats: Cell<SolverStats>,
}

impl BatchSatChecker {
    /// Creates the checker.
    #[must_use]
    pub fn new() -> Self {
        BatchSatChecker::default()
    }
}

impl BatchChecker for BatchSatChecker {
    fn name(&self) -> &'static str {
        "batch-sat"
    }

    fn check_all_executions(&self, exec: &Execution, models: &[MemoryModel]) -> Vec<Verdict> {
        let started = mcm_obs::Stopwatch::start();
        let mut stats = self.stats.get();
        let solves_before = stats.assumption_solves;
        stats.rows += 1;
        stats.models_checked += models.len() as u64;

        let candidates = read_candidates(exec);
        if candidates.iter().any(|(_, sources)| sources.is_empty()) {
            self.stats.set(stats);
            observe_row(BatchChecker::name(self), started, 0);
            return models.iter().map(|_| Verdict::forbidden()).collect();
        }

        let ModelGroups { groups, group_of } = group_models(exec, models);
        stats.model_groups += groups.len() as u64;

        // The shared, model-free base encoding: one per test.
        let n = exec.events().len();
        let mut solver = Solver::new();
        let order = OrderVars::new(&mut solver, n);
        order.add_partial_order_clauses(&mut solver);
        order.add_coherence_clauses(&mut solver, exec);
        let selectors = add_rf_selector_clauses(&mut solver, exec, &order, &candidates);

        // Each group's must-not-reorder units, guarded by its activation
        // literal so they are inert unless assumed.
        let group_lits: Vec<_> = groups
            .iter()
            .map(|(pairs, _)| {
                let guard = solver.new_var().positive();
                let mut guarded = GuardedSink::new(&mut solver, guard);
                for &(x, y) in pairs {
                    guarded.emit_clause(&[order.before(x.index(), y.index())]);
                }
                guard
            })
            .collect();

        let group_verdicts: Vec<Verdict> = groups
            .iter()
            .zip(&group_lits)
            .map(|((_, rep), &guard)| {
                stats.assumption_solves += 1;
                if solver.solve_with_assumptions(&[guard]) != SatResult::Sat {
                    return Verdict::forbidden();
                }
                // Any satisfying assignment under this guard satisfies
                // this model's axioms (other groups' guarded clauses are
                // vacuous or redundant extra orderings), so the decoded
                // (rf, co) witnesses the verdict.
                let rf = extract_rf(&solver, &candidates, &selectors);
                let co = order.extract_co(&solver, exec);
                let edges = required_edges(&models[*rep], exec, &rf, &co);
                debug_assert!(edges.admits_partial_order(exec));
                Verdict::allowed(Witness {
                    rf,
                    co,
                    hb_edges: edges.labeled,
                })
            })
            .collect();

        let mut sat = self.solver_stats.get();
        sat.absorb(solver.stats());
        self.solver_stats.set(sat);
        self.stats.set(stats);
        observe_row(
            BatchChecker::name(self),
            started,
            stats.assumption_solves - solves_before,
        );
        group_of
            .iter()
            .map(|&g| group_verdicts[g].clone())
            .collect()
    }

    fn batch_stats(&self) -> Option<BatchStats> {
        Some(self.stats.get())
    }

    fn solver_stats(&self) -> Option<SolverStats> {
        Some(self.solver_stats.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExplicitChecker;
    use mcm_core::{Formula, Loc, Outcome, Program, Reg, ThreadId, Value};

    fn sb() -> LitmusTest {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(ThreadId(0), Reg(1), Value(0))
            .constrain(ThreadId(1), Reg(2), Value(0));
        LitmusTest::new("SB", program, outcome).unwrap()
    }

    fn models() -> Vec<MemoryModel> {
        vec![
            MemoryModel::new("SC", Formula::always()),
            MemoryModel::new("weakest", Formula::never()),
            MemoryModel::new("weakest-twin", Formula::never()),
        ]
    }

    #[test]
    fn batch_explicit_matches_per_cell_on_sb() {
        let test = sb();
        let batch = BatchExplicitChecker::new();
        let verdicts = batch.check_all(&test, &models());
        let per_cell = ExplicitChecker::new();
        for (model, verdict) in models().iter().zip(&verdicts) {
            assert_eq!(
                verdict.allowed,
                per_cell.is_allowed(model, &test),
                "batch disagrees on {}",
                model.name()
            );
        }
        let stats = batch.batch_stats().expect("native batch has stats");
        assert_eq!(stats.rows, 1);
        assert_eq!(stats.models_checked, 3);
        assert_eq!(stats.model_groups, 2, "the weakest twins share a group");
    }

    #[test]
    fn batch_explicit_witnesses_equal_per_cell_witnesses() {
        let test = sb();
        let verdicts = BatchExplicitChecker::new().check_all(&test, &models());
        let per_cell = ExplicitChecker::new().check(&models()[1], &test);
        let batch_witness = verdicts[1].witness.as_ref().expect("allowed");
        let cell_witness = per_cell.witness.expect("allowed");
        assert_eq!(batch_witness.rf, cell_witness.rf);
        assert_eq!(batch_witness.co, cell_witness.co);
        assert_eq!(batch_witness.hb_edges, cell_witness.hb_edges);
    }

    #[test]
    fn batch_sat_matches_per_cell_and_counts_work() {
        let test = sb();
        let batch = BatchSatChecker::new();
        let verdicts = batch.check_all(&test, &models());
        assert!(!verdicts[0].allowed);
        assert!(verdicts[1].allowed && verdicts[2].allowed);
        let stats = batch.batch_stats().expect("stats");
        assert_eq!(stats.assumption_solves, 2, "one solve per group, not per model");
        assert!(
            batch.solver_stats().expect("sat-backed").propagations > 0,
            "solver work is counted"
        );
    }

    #[test]
    fn per_cell_adapter_serves_any_checker() {
        let test = sb();
        let adapter: Box<dyn BatchChecker> = Box::new(ExplicitChecker::new());
        let verdicts = adapter.check_all(&test, &models());
        assert_eq!(BatchChecker::name(&ExplicitChecker::new()), "explicit");
        assert!(!verdicts[0].allowed);
        assert!(verdicts[1].allowed);
        assert!(adapter.batch_stats().is_none(), "adapters have no row stats");
    }

    #[test]
    fn value_infeasible_rows_are_forbidden_everywhere() {
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(9));
        let test = LitmusTest::new("inf", program, outcome).unwrap();
        for checker in [
            Box::new(BatchExplicitChecker::new()) as Box<dyn BatchChecker>,
            Box::new(BatchSatChecker::new()),
        ] {
            assert!(checker
                .check_all(&test, &models())
                .iter()
                .all(|v| !v.allowed));
        }
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = BatchStats {
            rows: 1,
            models_checked: 3,
            model_groups: 2,
            shared_candidates: 5,
            group_evals: 7,
            assumption_solves: 0,
        };
        let b = a;
        a.absorb(b);
        assert_eq!(a.rows, 2);
        assert_eq!(a.group_evals, 14);
    }
}
