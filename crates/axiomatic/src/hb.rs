//! Happens-before construction: the five axioms of §2.2.
//!
//! Given a candidate execution, a must-not-reorder function `F`, a read-from
//! map and a coherence order, the axioms *force* a set of happens-before
//! edges:
//!
//! * **Program order** — `F(x, y)` and `x` po-before `y` ⟹ `x ⇒ y`;
//! * **Write-write** — same-location writes are ordered as the coherence
//!   order dictates;
//! * **Write-read** — a read is after the cross-thread write it reads from
//!   (reads from the *own* thread are exempt: early forwarding);
//! * **Read-write** — a read is before every same-location write coherence-
//!   after its source (reads of the initial value are before every
//!   same-location write);
//! * **Ignore local** — happens-before never contradicts program order
//!   within a thread.
//!
//! The execution is allowed for this `(rf, co)` choice iff no *forced*
//! ordering points backwards in program order (ignore-local) and the forced
//! edge set is acyclic. Note that ignore-local constrains only the directly
//! forced orderings (a local coherence edge, a from-read edge to an earlier
//! local write), **not** the transitive closure: in Figure 1's Test A the
//! chain `R Y=2 ⇒ R X ⇒ W X ⇒ fence ⇒ R Y=0 ⇒ W Y=2` transitively "orders"
//! a read before the local write it forwarded from, and the paper counts
//! the execution as allowed under TSO because the edge set is acyclic.

use std::fmt;

use mcm_core::{EventId, Execution, MemoryModel};

use crate::co::CoOrder;
use crate::graph::DenseGraph;
use crate::rf::{RfMap, RfSource};

/// Which axiom forced an edge (for witness output).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Program-order edge kept by `F`.
    ProgramOrder,
    /// Write-read edge (cross-thread read-from).
    ReadFrom,
    /// Write-write edge (coherence).
    Coherence,
    /// Read-write edge (from-read).
    FromRead,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::ProgramOrder => write!(f, "po"),
            EdgeKind::ReadFrom => write!(f, "rf"),
            EdgeKind::Coherence => write!(f, "co"),
            EdgeKind::FromRead => write!(f, "fr"),
        }
    }
}

/// The forced happens-before edges for one `(rf, co)` choice.
#[derive(Clone, Debug)]
pub struct HbEdges {
    /// Edge list with provenance labels.
    pub labeled: Vec<(EventId, EventId, EdgeKind)>,
    /// The same edges as a graph over event indices.
    pub graph: DenseGraph,
}

impl HbEdges {
    /// The ignore-local axiom over the directly forced orderings: no
    /// forced edge may point backwards in program order. Program-order
    /// edges always point forwards, so for [`base_edges`] (and for the
    /// full [`required_edges`] set alike) this is a property of the
    /// model-independent `(rf, co)` edges only — which is what lets the
    /// batched checker decide it once per candidate and share the answer
    /// across every model of a sweep row.
    #[must_use]
    pub fn respects_ignore_local(&self, exec: &Execution) -> bool {
        self.labeled.iter().all(|&(x, y, _)| !exec.po_earlier(y, x))
    }

    /// Whether a valid happens-before relation realises these edges: no
    /// directly forced ordering may contradict program order (ignore-local)
    /// and the edge set must be acyclic.
    #[must_use]
    pub fn admits_partial_order(&self, exec: &Execution) -> bool {
        self.respects_ignore_local(exec) && !self.graph.has_cycle()
    }

    /// Whether the union of these edges with the program-order pairs `po`
    /// is acyclic. The caller guarantees `po` pairs point forwards in
    /// program order (as [`forced_po_pairs`] produces them), so the
    /// ignore-local check needs no revisiting — this is the hot query of
    /// the batched explicit checker: one shared base edge set, one cheap
    /// graph union per model group.
    #[must_use]
    pub fn acyclic_with(&self, po: &[(EventId, EventId)]) -> bool {
        let mut graph = self.graph.clone();
        for &(x, y) in po {
            graph.add_edge(x.index(), y.index());
        }
        !graph.has_cycle()
    }
}

/// The same-thread pairs the model's must-not-reorder function forces
/// into program order — the **only** model-dependent ingredient of the
/// forced edge set. Pairs are emitted in thread-major program order, with
/// `x` always po-before `y`.
#[must_use]
pub fn forced_po_pairs(model: &MemoryModel, exec: &Execution) -> Vec<(EventId, EventId)> {
    let mut pairs = Vec::new();
    for t in 0..exec.num_threads() {
        let events = exec.thread_events(mcm_core::ThreadId(t as u8));
        for (i, &x) in events.iter().enumerate() {
            for &y in &events[i + 1..] {
                if model.must_not_reorder(exec, x, y) {
                    pairs.push((x, y));
                }
            }
        }
    }
    pairs
}

/// The model-independent edges forced by `(rf, co)` alone: write-read,
/// write-write (coherence) and read-write (from-read). Together with
/// [`forced_po_pairs`] this is the whole forced edge set — the batched
/// checker builds it once per candidate execution and reuses it for every
/// model of a row.
#[must_use]
pub fn base_edges(exec: &Execution, rf: &RfMap, co: &CoOrder) -> HbEdges {
    collect_edges(exec, rf, co, &[])
}

/// Builds the edges forced by the axioms for `(model, rf, co)`.
#[must_use]
pub fn required_edges(
    model: &MemoryModel,
    exec: &Execution,
    rf: &RfMap,
    co: &CoOrder,
) -> HbEdges {
    collect_edges(exec, rf, co, &forced_po_pairs(model, exec))
}

/// Shared edge collection: the program-order pairs first (labels take
/// precedence on duplicate edges), then the `(rf, co)` axioms.
fn collect_edges(
    exec: &Execution,
    rf: &RfMap,
    co: &CoOrder,
    po: &[(EventId, EventId)],
) -> HbEdges {
    let n = exec.events().len();
    let mut graph = DenseGraph::new(n);
    let mut labeled = Vec::new();
    let mut add = |graph: &mut DenseGraph, from: EventId, to: EventId, kind: EdgeKind| {
        if !graph.has_edge(from.index(), to.index()) {
            graph.add_edge(from.index(), to.index());
            labeled.push((from, to, kind));
        }
    };

    // Program order: F-filtered, over *all* same-thread pairs.
    for &(x, y) in po {
        add(&mut graph, x, y, EdgeKind::ProgramOrder);
    }

    // Write-read: cross-thread read-from.
    for &(read, source) in &rf.pairs {
        if let RfSource::Write(write) = source {
            if !exec.same_thread(write, read) {
                add(&mut graph, write, read, EdgeKind::ReadFrom);
            }
        }
    }

    // Write-write: every coherence-ordered pair is a forced ordering (the
    // write-write axiom orders each same-location pair directly, so the
    // ignore-local check must see all of them, not just consecutive ones).
    for (_, writes) in &co.per_loc {
        for (i, &w1) in writes.iter().enumerate() {
            for &w2 in &writes[i + 1..] {
                add(&mut graph, w1, w2, EdgeKind::Coherence);
            }
        }
    }

    // Read-write (from-read).
    for &(read, source) in &rf.pairs {
        let loc = exec.event(read).loc().expect("read has a location");
        match source {
            RfSource::Init => {
                for w in exec.writes_to(loc) {
                    add(&mut graph, read, w.id, EdgeKind::FromRead);
                }
            }
            RfSource::Write(z) => {
                for w in exec.writes_to(loc) {
                    if w.id != z && co.before(z, w.id) {
                        add(&mut graph, read, w.id, EdgeKind::FromRead);
                    }
                }
            }
        }
    }

    HbEdges { labeled, graph }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::co::enumerate_co_orders;
    use crate::rf::enumerate_rf_maps;
    use mcm_core::{Formula, Loc, Outcome, Program, Reg, ThreadId, Value};

    fn sc() -> MemoryModel {
        MemoryModel::new("SC", Formula::always())
    }

    fn weakest() -> MemoryModel {
        MemoryModel::new("weakest", Formula::never())
    }

    /// Message passing: W X=1; W Y=1 || R Y=1; R X=0.
    fn mp() -> Execution {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .write(Loc::Y, Value(1))
            .thread()
            .read(Loc::Y, Reg(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(ThreadId(1), Reg(1), Value(1))
            .constrain(ThreadId(1), Reg(2), Value(0));
        Execution::from_program(&program, &outcome).unwrap()
    }

    #[test]
    fn mp_is_forbidden_under_sc() {
        let exec = mp();
        let model = sc();
        for rf in enumerate_rf_maps(&exec) {
            for co in enumerate_co_orders(&exec) {
                let edges = required_edges(&model, &exec, &rf, &co);
                assert!(!edges.admits_partial_order(&exec));
            }
        }
    }

    #[test]
    fn mp_is_allowed_when_nothing_is_ordered() {
        let exec = mp();
        let model = weakest();
        let allowed = enumerate_rf_maps(&exec).iter().any(|rf| {
            enumerate_co_orders(&exec)
                .iter()
                .any(|co| required_edges(&model, &exec, rf, co).admits_partial_order(&exec))
        });
        assert!(allowed);
    }

    #[test]
    fn read_cannot_skip_program_earlier_local_write() {
        // W X=1; R X -> r1 = 0: forbidden even in the weakest model — the
        // from-read edge would point backwards in program order.
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(0));
        let exec = Execution::from_program(&program, &outcome).unwrap();
        let model = weakest();
        for rf in enumerate_rf_maps(&exec) {
            for co in enumerate_co_orders(&exec) {
                let edges = required_edges(&model, &exec, &rf, &co);
                assert!(!edges.admits_partial_order(&exec));
            }
        }
    }

    #[test]
    fn forwarding_does_not_create_rf_edge() {
        // W X=1; R X -> r1 = 1: the local rf must not add an edge (that is
        // the whole point of write-read being cross-thread only).
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(1));
        let exec = Execution::from_program(&program, &outcome).unwrap();
        let model = weakest();
        let rfs = enumerate_rf_maps(&exec);
        let cos = enumerate_co_orders(&exec);
        let edges = required_edges(&model, &exec, &rfs[0], &cos[0]);
        assert!(edges.labeled.iter().all(|(_, _, k)| *k != EdgeKind::ReadFrom));
        assert!(edges.admits_partial_order(&exec));
    }

    #[test]
    fn coherence_against_program_order_is_rejected() {
        // Two same-thread writes to X: the co order that inverts them is
        // rejected by ignore-local.
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .write(Loc::X, Value(2))
            .build()
            .unwrap();
        let exec = Execution::from_program(&program, &Outcome::new()).unwrap();
        let model = weakest();
        let rf = &enumerate_rf_maps(&exec)[0];
        let orders = enumerate_co_orders(&exec);
        let verdicts: Vec<bool> = orders
            .iter()
            .map(|co| required_edges(&model, &exec, rf, co).admits_partial_order(&exec))
            .collect();
        assert_eq!(verdicts.iter().filter(|v| **v).count(), 1);
    }

    #[test]
    fn edge_labels_cover_all_kinds() {
        let exec = mp();
        let model = sc();
        let rf = &enumerate_rf_maps(&exec)[0];
        let co = &enumerate_co_orders(&exec)[0];
        let edges = required_edges(&model, &exec, rf, co);
        let kinds: Vec<EdgeKind> = edges.labeled.iter().map(|(_, _, k)| *k).collect();
        assert!(kinds.contains(&EdgeKind::ProgramOrder));
        assert!(kinds.contains(&EdgeKind::ReadFrom));
        assert!(kinds.contains(&EdgeKind::FromRead));
    }
}
