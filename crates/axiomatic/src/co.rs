//! Coherence orders: per-location total orders over writes.
//!
//! The paper's write-write axiom (§2.2) demands that any two same-location
//! writes be happens-before ordered one way or the other; enumerating the
//! per-location total orders (and letting acyclicity plus the ignore-local
//! axiom weed out the impossible ones) realises that disjunction exactly.

use mcm_core::{EventId, Execution, Loc};

/// One coherence order: for every location with at least one write, the
/// writes in their chosen order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoOrder {
    /// `(location, writes-in-order)` pairs, one per written location.
    pub per_loc: Vec<(Loc, Vec<EventId>)>,
}

impl CoOrder {
    /// Position of `write` within its location's order.
    #[must_use]
    pub fn position(&self, write: EventId) -> Option<usize> {
        self.per_loc
            .iter()
            .flat_map(|(_, ws)| ws.iter().enumerate().map(move |(i, w)| (*w, i)))
            .find(|(w, _)| *w == write)
            .map(|(_, i)| i)
    }

    /// Whether `a` is coherence-before `b` (same location, both writes).
    #[must_use]
    pub fn before(&self, a: EventId, b: EventId) -> bool {
        for (_, ws) in &self.per_loc {
            let pa = ws.iter().position(|&w| w == a);
            let pb = ws.iter().position(|&w| w == b);
            if let (Some(pa), Some(pb)) = (pa, pb) {
                return pa < pb;
            }
        }
        false
    }
}

/// Enumerates all coherence orders of the execution (the Cartesian product
/// of per-location write permutations).
///
/// Orders that put two same-thread writes against program order are *not*
/// filtered here — the ignore-local axiom rejects them during happens-before
/// construction, keeping this module a pure enumerator.
#[must_use]
pub fn enumerate_co_orders(exec: &Execution) -> Vec<CoOrder> {
    let mut locs: Vec<Loc> = exec.writes().filter_map(|w| w.loc()).collect();
    locs.sort();
    locs.dedup();
    let per_loc_writes: Vec<(Loc, Vec<EventId>)> = locs
        .into_iter()
        .map(|loc| (loc, exec.writes_to(loc).map(|w| w.id).collect()))
        .collect();

    let mut orders: Vec<Vec<(Loc, Vec<EventId>)>> = vec![Vec::new()];
    for (loc, writes) in &per_loc_writes {
        let perms = permutations(writes);
        let mut next = Vec::with_capacity(orders.len() * perms.len());
        for prefix in &orders {
            for perm in &perms {
                let mut extended = prefix.clone();
                extended.push((*loc, perm.clone()));
                next.push(extended);
            }
        }
        orders = next;
    }
    orders
        .into_iter()
        .map(|per_loc| CoOrder { per_loc })
        .collect()
}

fn permutations(items: &[EventId]) -> Vec<Vec<EventId>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest: Vec<EventId> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::{Outcome, Program, Value};

    #[test]
    fn two_writes_two_orders() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .thread()
            .write(Loc::X, Value(2))
            .build()
            .unwrap();
        let exec = Execution::from_program(&program, &Outcome::new()).unwrap();
        let orders = enumerate_co_orders(&exec);
        assert_eq!(orders.len(), 2);
        let writes: Vec<EventId> = exec.writes().map(|w| w.id).collect();
        assert!(orders.iter().any(|o| o.before(writes[0], writes[1])));
        assert!(orders.iter().any(|o| o.before(writes[1], writes[0])));
    }

    #[test]
    fn independent_locations_multiply() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .write(Loc::Y, Value(1))
            .thread()
            .write(Loc::X, Value(2))
            .write(Loc::Y, Value(2))
            .build()
            .unwrap();
        let exec = Execution::from_program(&program, &Outcome::new()).unwrap();
        // 2 writes to X (2 perms) × 2 writes to Y (2 perms) = 4.
        assert_eq!(enumerate_co_orders(&exec).len(), 4);
    }

    #[test]
    fn no_writes_single_empty_order() {
        let program = Program::builder().thread().fence().build().unwrap();
        let exec = Execution::from_program(&program, &Outcome::new()).unwrap();
        let orders = enumerate_co_orders(&exec);
        assert_eq!(orders.len(), 1);
        assert!(orders[0].per_loc.is_empty());
    }

    #[test]
    fn position_and_before_agree() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .write(Loc::X, Value(2))
            .write(Loc::X, Value(3))
            .build()
            .unwrap();
        let exec = Execution::from_program(&program, &Outcome::new()).unwrap();
        let orders = enumerate_co_orders(&exec);
        assert_eq!(orders.len(), 6);
        for order in &orders {
            let ws = &order.per_loc[0].1;
            for i in 0..ws.len() {
                assert_eq!(order.position(ws[i]), Some(i));
                for j in (i + 1)..ws.len() {
                    assert!(order.before(ws[i], ws[j]));
                    assert!(!order.before(ws[j], ws[i]));
                }
            }
        }
    }
}
