//! Litmus-test instructions.
//!
//! The paper (§2.1) splits instructions into *memory access* instructions
//! (reads and writes) and *non-memory-access* instructions (fences,
//! arithmetic, branches). This module defines the concrete instruction set
//! used by our litmus programs, including the register-arithmetic idiom
//! `t1 = r1 - r1 + 1` that the paper uses to manufacture data dependencies
//! (Figure 3, tests L4, L6, L8, L9).

use std::fmt;

use crate::ids::{Loc, Reg, Value};

/// The kind of a fence (or other special non-memory instruction).
///
/// [`FenceKind::Full`] is the ordinary full memory fence; [`FenceKind::Special`]
/// models the paper's §3.3 hypothetical family of `n` distinguishable fence
/// flavours `f1 … fn`, used to show that the number of non-memory
/// instructions in a minimal litmus test depends on the predicate set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FenceKind {
    /// A full fence, ordering everything with everything (under the usual
    /// `Fence(x) ∨ Fence(y)` disjunct of a must-not-reorder function).
    Full,
    /// A custom fence flavour, distinguished only by custom predicates.
    Special(u8),
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FenceKind::Full => write!(f, "fence"),
            FenceKind::Special(n) => write!(f, "fence.f{n}"),
        }
    }
}

/// An address operand: a literal location or a register holding an address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AddrExpr {
    /// A fixed location, e.g. `X`.
    Loc(Loc),
    /// A register-indirect address, e.g. `[t1]` — this is how address
    /// dependencies enter a program.
    Reg(Reg),
}

impl fmt::Display for AddrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrExpr::Loc(loc) => write!(f, "{loc}"),
            AddrExpr::Reg(reg) => write!(f, "[{reg}]"),
        }
    }
}

/// A register-arithmetic expression (right-hand side of [`Instruction::Op`],
/// value operand of writes, condition of branches).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RegExpr {
    /// A constant.
    Const(Value),
    /// A register read.
    Reg(Reg),
    /// The numeric address of a location (`&X`), for address arithmetic.
    LocAddr(Loc),
    /// Addition.
    Add(Box<RegExpr>, Box<RegExpr>),
    /// Subtraction.
    Sub(Box<RegExpr>, Box<RegExpr>),
}

impl RegExpr {
    /// `r - r + k`: the paper's data-dependency idiom. The result is always
    /// `k`, but hardware must respect the syntactic dependency on `r`.
    #[must_use]
    pub fn dep_const(reg: Reg, value: Value) -> RegExpr {
        RegExpr::Add(
            Box::new(RegExpr::Sub(
                Box::new(RegExpr::Reg(reg)),
                Box::new(RegExpr::Reg(reg)),
            )),
            Box::new(RegExpr::Const(value)),
        )
    }

    /// `r - r + &loc`: the address-dependency idiom (always evaluates to the
    /// address of `loc`, but depends on `r`).
    #[must_use]
    pub fn dep_addr(reg: Reg, loc: Loc) -> RegExpr {
        RegExpr::Add(
            Box::new(RegExpr::Sub(
                Box::new(RegExpr::Reg(reg)),
                Box::new(RegExpr::Reg(reg)),
            )),
            Box::new(RegExpr::LocAddr(loc)),
        )
    }

    /// Evaluates the expression over a register file. Returns `None` when
    /// a register is unset (validated programs never hit this).
    #[must_use]
    pub fn eval(&self, regs: &std::collections::BTreeMap<Reg, Value>) -> Option<Value> {
        match self {
            RegExpr::Const(v) => Some(*v),
            RegExpr::Reg(r) => regs.get(r).copied(),
            RegExpr::LocAddr(loc) => Some(loc.base_address()),
            RegExpr::Add(a, b) => {
                Some(Value(a.eval(regs)?.0.wrapping_add(b.eval(regs)?.0)))
            }
            RegExpr::Sub(a, b) => {
                Some(Value(a.eval(regs)?.0.wrapping_sub(b.eval(regs)?.0)))
            }
        }
    }

    /// All registers syntactically mentioned by the expression.
    pub fn registers(&self, out: &mut Vec<Reg>) {
        match self {
            RegExpr::Const(_) | RegExpr::LocAddr(_) => {}
            RegExpr::Reg(r) => out.push(*r),
            RegExpr::Add(a, b) | RegExpr::Sub(a, b) => {
                a.registers(out);
                b.registers(out);
            }
        }
    }
}

impl fmt::Display for RegExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegExpr::Const(v) => write!(f, "{v}"),
            RegExpr::Reg(r) => write!(f, "{r}"),
            RegExpr::LocAddr(loc) => write!(f, "&{loc}"),
            RegExpr::Add(a, b) => write!(f, "{a} + {b}"),
            RegExpr::Sub(a, b) => match **b {
                RegExpr::Add(..) | RegExpr::Sub(..) => write!(f, "{a} - ({b})"),
                _ => write!(f, "{a} - {b}"),
            },
        }
    }
}

/// One instruction of a litmus-test thread.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instruction {
    /// `Read addr -> dst`: load from memory into a register.
    Read {
        /// Where to read from.
        addr: AddrExpr,
        /// Destination register.
        dst: Reg,
    },
    /// `Write addr <- val`: store a value to memory.
    Write {
        /// Where to write to.
        addr: AddrExpr,
        /// The stored value.
        val: RegExpr,
    },
    /// A memory fence.
    Fence(FenceKind),
    /// `dst = expr`: register arithmetic (a non-memory-access instruction).
    Op {
        /// Destination register.
        dst: Reg,
        /// Right-hand side.
        expr: RegExpr,
    },
    /// A branch on `cond` whose two targets are both the next instruction:
    /// control flow is unaffected (programs stay loop-free and
    /// deterministic) but every later instruction becomes control-dependent
    /// on the reads feeding `cond`. This is the `beq r1, r1, next` idiom of
    /// real litmus tests.
    Branch {
        /// The (ignored) branch condition.
        cond: RegExpr,
    },
}

impl Instruction {
    /// Whether this is a memory-access instruction (read or write).
    #[must_use]
    pub fn is_access(&self) -> bool {
        matches!(self, Instruction::Read { .. } | Instruction::Write { .. })
    }

    /// The register this instruction writes, if any.
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instruction::Read { dst, .. } | Instruction::Op { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// All registers this instruction reads.
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        match self {
            Instruction::Read { addr, .. } => {
                if let AddrExpr::Reg(r) = addr {
                    out.push(*r);
                }
            }
            Instruction::Write { addr, val } => {
                if let AddrExpr::Reg(r) = addr {
                    out.push(*r);
                }
                val.registers(&mut out);
            }
            Instruction::Fence(_) => {}
            Instruction::Op { expr, .. } => expr.registers(&mut out),
            Instruction::Branch { cond } => cond.registers(&mut out),
        }
        out
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Read { addr, dst } => write!(f, "read {addr} -> {dst}"),
            Instruction::Write { addr, val } => write!(f, "write {addr} = {val}"),
            Instruction::Fence(kind) => write!(f, "{kind}"),
            Instruction::Op { dst, expr } => write!(f, "op {dst} = {expr}"),
            Instruction::Branch { cond } => write!(f, "branch {cond}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dep_const_mentions_register_but_is_constant_shaped() {
        let e = RegExpr::dep_const(Reg(1), Value(5));
        let mut regs = Vec::new();
        e.registers(&mut regs);
        assert_eq!(regs, vec![Reg(1), Reg(1)]);
        assert_eq!(e.to_string(), "r1 - r1 + 5");
    }

    #[test]
    fn dep_addr_displays_like_the_paper() {
        let e = RegExpr::dep_addr(Reg(1), Loc::Y);
        assert_eq!(e.to_string(), "r1 - r1 + &Y");
    }

    #[test]
    fn uses_and_defs() {
        let read = Instruction::Read {
            addr: AddrExpr::Reg(Reg(2)),
            dst: Reg(3),
        };
        assert_eq!(read.def(), Some(Reg(3)));
        assert_eq!(read.uses(), vec![Reg(2)]);
        assert!(read.is_access());

        let write = Instruction::Write {
            addr: AddrExpr::Loc(Loc::X),
            val: RegExpr::Reg(Reg(1)),
        };
        assert_eq!(write.def(), None);
        assert_eq!(write.uses(), vec![Reg(1)]);
        assert!(write.is_access());

        let fence = Instruction::Fence(FenceKind::Full);
        assert!(!fence.is_access());
        assert!(fence.uses().is_empty());

        let branch = Instruction::Branch {
            cond: RegExpr::Reg(Reg(7)),
        };
        assert!(!branch.is_access());
        assert_eq!(branch.uses(), vec![Reg(7)]);
    }

    #[test]
    fn instruction_display() {
        let i = Instruction::Write {
            addr: AddrExpr::Loc(Loc::X),
            val: RegExpr::Const(Value(1)),
        };
        assert_eq!(i.to_string(), "write X = 1");
        let i = Instruction::Read {
            addr: AddrExpr::Reg(Reg(1)),
            dst: Reg(2),
        };
        assert_eq!(i.to_string(), "read [r1] -> r2");
        assert_eq!(Instruction::Fence(FenceKind::Full).to_string(), "fence");
        assert_eq!(
            Instruction::Fence(FenceKind::Special(2)).to_string(),
            "fence.f2"
        );
    }
}
