//! # mcm-core
//!
//! Core vocabulary for the litmus-test memory-model comparator: litmus
//! programs and their instruction set ([`instr`], [`program`]), candidate
//! executions with dependency dataflow ([`execution`]), the predicate and
//! *must-not-reorder* formula DSL defining the paper's class of memory
//! models ([`formula`], [`MemoryModel`]), and litmus tests themselves
//! ([`LitmusTest`], [`parse`]).
//!
//! This crate implements §2 of Mador-Haim, Alur, Martin, *"Litmus Tests
//! for Comparing Memory Consistency Models: How Long Do They Need to Be?"*
//! (DAC 2011): the semantic judgement (happens-before axioms) lives in
//! `mcm-axiomatic`, and concrete models live in `mcm-models`.
//!
//! ## Example
//!
//! Build the store-buffering test and inspect its candidate execution:
//!
//! ```
//! use mcm_core::{LitmusTest, Loc, Outcome, Program, Reg, ThreadId, Value};
//!
//! # fn main() -> Result<(), mcm_core::CoreError> {
//! let program = Program::builder()
//!     .thread()
//!     .write(Loc::X, Value(1))
//!     .read(Loc::Y, Reg(1))
//!     .thread()
//!     .write(Loc::Y, Value(1))
//!     .read(Loc::X, Reg(2))
//!     .build()?;
//! let outcome = Outcome::new()
//!     .constrain(ThreadId(0), Reg(1), Value(0))
//!     .constrain(ThreadId(1), Reg(2), Value(0));
//! let test = LitmusTest::new("SB", program, outcome)?;
//! assert_eq!(test.execution().events().len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod event;
pub mod execution;
pub mod formula;
mod ids;
pub mod instr;
pub mod json;
mod litmus;
mod model;
pub mod parse;
pub mod program;
pub mod skeleton;

pub use error::CoreError;
pub use event::{Event, EventKind};
pub use execution::{Execution, Outcome, MAX_EVENTS};
pub use formula::{ArgPos, Atom, Formula};
pub use ids::{EventId, Loc, Reg, ThreadId, Value};
pub use instr::{AddrExpr, FenceKind, Instruction, RegExpr};
pub use json::{Json, JsonError};
pub use litmus::LitmusTest;
pub use model::MemoryModel;
pub use program::{Program, ProgramBuilder, Thread};
pub use skeleton::{Slot, SlotRf, TestSkeleton};
