//! Test skeletons: the bridge between symbolic synthesis and concrete
//! litmus tests.
//!
//! A [`TestSkeleton`] is a litmus test with its incidental names erased:
//! each memory access is a [`Slot`] carrying only the *choices* a
//! synthesizer ranges over — op kind, abstract location index, an optional
//! trailing fence, an optional data dependency, and (for reads) the write
//! slot the read observes. [`TestSkeleton::decode`] materialises the
//! canonical concrete test of those choices:
//!
//! * locations become `Loc(0), Loc(1), …` directly from the slot indices;
//! * the *i*-th write to a location stores value `i` (so every write to a
//!   location is observably distinct, and distinct from the initial `0`);
//! * registers are `r1, r2, …` per thread in read order;
//! * a dependent write routes its value through the paper's
//!   `t = r - r + k` idiom, where `r` is the most recent preceding read
//!   of its thread;
//! * the demanded outcome constrains every read to the value of its
//!   [`SlotRf`] source.
//!
//! Because written values are pairwise distinct, the decoded test's
//! candidate execution has exactly one value-consistent read-from map —
//! the one written in the skeleton. A SAT model over skeleton choice
//! variables therefore decodes to a test whose admissibility question is
//! precisely the one the synthesizer's symbolic encoding answered.

use crate::error::CoreError;
use crate::execution::Outcome;
use crate::ids::{Loc, Reg, ThreadId, Value};
use crate::instr::RegExpr;
use crate::litmus::LitmusTest;
use crate::program::Program;

/// Where a skeleton read takes its value from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SlotRf {
    /// The initial value (`0`).
    Init,
    /// The write in the given slot, addressed as `(thread, position)`.
    Write(usize, usize),
}

/// One memory access of a skeleton.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Slot {
    /// `true` for a write, `false` for a read.
    pub is_write: bool,
    /// Abstract location index (`0 = X`, `1 = Y`, …).
    pub loc: u8,
    /// Insert a full fence after this access.
    pub fence_after: bool,
    /// Writes only: route the stored value through a data dependency on
    /// the most recent preceding read of the thread.
    pub dep: bool,
    /// Reads only: the observed source. Ignored for writes.
    pub rf: SlotRf,
}

impl Slot {
    /// A read of `loc` observing `rf`.
    #[must_use]
    pub fn read(loc: u8, rf: SlotRf) -> Slot {
        Slot {
            is_write: false,
            loc,
            fence_after: false,
            dep: false,
            rf,
        }
    }

    /// A write to `loc`.
    #[must_use]
    pub fn write(loc: u8) -> Slot {
        Slot {
            is_write: true,
            loc,
            fence_after: false,
            dep: false,
            rf: SlotRf::Init,
        }
    }
}

/// A bounded-shape litmus test with names erased: per-thread slot
/// sequences ready to be decoded into a concrete [`LitmusTest`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TestSkeleton {
    /// The slots of each thread, in program order.
    pub threads: Vec<Vec<Slot>>,
}

impl TestSkeleton {
    /// Total number of access slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Whether the skeleton has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes the skeleton into its canonical concrete test.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedSkeleton`] when a read's source is
    /// not a write slot to the same location, when a read would observe a
    /// program-order-later write of its own thread, or when a dependent
    /// write has no preceding read; propagates [`LitmusTest::new`] errors
    /// for anything that slips past those checks.
    pub fn decode(&self, name: impl Into<String>) -> Result<LitmusTest, CoreError> {
        let malformed = |what: &str| CoreError::MalformedSkeleton {
            reason: what.to_string(),
        };
        // First pass: assign each write its canonical value.
        let mut next_value: Vec<i64> = Vec::new();
        let mut write_value = std::collections::BTreeMap::new();
        for (t, thread) in self.threads.iter().enumerate() {
            for (p, slot) in thread.iter().enumerate() {
                if slot.is_write {
                    let idx = usize::from(slot.loc);
                    if next_value.len() <= idx {
                        next_value.resize(idx + 1, 1);
                    }
                    write_value.insert((t, p), Value(next_value[idx]));
                    next_value[idx] += 1;
                }
            }
        }

        let mut builder = Program::builder();
        let mut outcome = Outcome::new();
        for (t, thread) in self.threads.iter().enumerate() {
            builder = builder.thread();
            let tid = ThreadId(u8::try_from(t).map_err(|_| malformed("too many threads"))?);
            let mut next_reg = 1u8;
            let mut last_read: Option<Reg> = None;
            for (p, slot) in thread.iter().enumerate() {
                let loc = Loc(slot.loc);
                if slot.is_write {
                    let value = write_value[&(t, p)];
                    builder = if slot.dep {
                        let src = last_read.ok_or_else(|| {
                            malformed("dependent write has no preceding read")
                        })?;
                        builder.write_expr(loc, RegExpr::dep_const(src, value))
                    } else {
                        builder.write(loc, value)
                    };
                } else {
                    if slot.dep {
                        return Err(malformed("reads cannot carry a dependency"));
                    }
                    let reg = Reg(next_reg);
                    next_reg += 1;
                    let expected = match slot.rf {
                        SlotRf::Init => Value::INIT,
                        SlotRf::Write(wt, wp) => {
                            let source = self
                                .threads
                                .get(wt)
                                .and_then(|th| th.get(wp))
                                .ok_or_else(|| malformed("rf source out of range"))?;
                            if !source.is_write || source.loc != slot.loc {
                                return Err(malformed(
                                    "rf source is not a same-location write",
                                ));
                            }
                            if wt == t && wp > p {
                                return Err(malformed(
                                    "read observes a program-later local write",
                                ));
                            }
                            write_value[&(wt, wp)]
                        }
                    };
                    outcome = outcome.constrain(tid, reg, expected);
                    builder = builder.read(loc, reg);
                    last_read = Some(reg);
                }
                if slot.fence_after {
                    if p + 1 == thread.len() {
                        return Err(malformed("trailing fence at end of thread"));
                    }
                    builder = builder.fence();
                }
            }
        }
        LitmusTest::new(name, builder.build()?, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_buffering_decodes() {
        // W X || R X(init) — then the classic SB shape.
        let skeleton = TestSkeleton {
            threads: vec![
                vec![Slot::write(0), Slot::read(1, SlotRf::Init)],
                vec![Slot::write(1), Slot::read(0, SlotRf::Init)],
            ],
        };
        let test = skeleton.decode("sb").unwrap();
        assert_eq!(test.program().access_count(), 4);
        assert_eq!(test.outcome().to_string(), "T1:r1=0; T2:r1=0");
    }

    #[test]
    fn reads_observe_canonical_write_values() {
        // Two writes to X get values 1 and 2; the reader observes the
        // second.
        let skeleton = TestSkeleton {
            threads: vec![
                vec![Slot::write(0), Slot::write(0)],
                vec![Slot::read(0, SlotRf::Write(0, 1))],
            ],
        };
        let test = skeleton.decode("coww").unwrap();
        assert_eq!(test.outcome().to_string(), "T2:r1=2");
        let exec = test.execution();
        assert_eq!(exec.writes().count(), 2);
    }

    #[test]
    fn dependent_write_uses_latest_preceding_read() {
        let skeleton = TestSkeleton {
            threads: vec![
                vec![
                    Slot::read(0, SlotRf::Init),
                    Slot {
                        dep: true,
                        ..Slot::write(1)
                    },
                ],
                vec![Slot::read(1, SlotRf::Write(0, 1))],
            ],
        };
        let test = skeleton.decode("dep").unwrap();
        let exec = test.execution();
        let t1 = exec.thread_events(ThreadId(0)).to_vec();
        assert!(exec.value_dep(t1[0], t1[1]));
        assert_eq!(test.outcome().to_string(), "T1:r1=0; T2:r1=1");
    }

    #[test]
    fn fences_are_inserted_between_accesses() {
        let skeleton = TestSkeleton {
            threads: vec![
                vec![
                    Slot {
                        fence_after: true,
                        ..Slot::write(0)
                    },
                    Slot::write(1),
                ],
                vec![
                    Slot::read(1, SlotRf::Write(0, 1)),
                    Slot::read(0, SlotRf::Init),
                ],
            ],
        };
        let test = skeleton.decode("mp+fence").unwrap();
        assert!(test.program().to_string().contains("fence"));
        assert_eq!(test.program().access_count(), 4);
    }

    #[test]
    fn malformed_skeletons_are_rejected() {
        let future = TestSkeleton {
            threads: vec![vec![Slot::read(0, SlotRf::Write(0, 1)), Slot::write(0)]],
        };
        assert!(matches!(
            future.decode("bad").unwrap_err(),
            CoreError::MalformedSkeleton { .. }
        ));
        let wrong_loc = TestSkeleton {
            threads: vec![
                vec![Slot::write(0)],
                vec![Slot::read(1, SlotRf::Write(0, 0))],
            ],
        };
        assert!(wrong_loc.decode("bad").is_err());
        let dangling = TestSkeleton {
            threads: vec![vec![Slot::read(0, SlotRf::Write(7, 7))]],
        };
        assert!(dangling.decode("bad").is_err());
        let no_read_dep = TestSkeleton {
            threads: vec![vec![Slot {
                dep: true,
                ..Slot::write(0)
            }]],
        };
        assert!(no_read_dep.decode("bad").is_err());
        let trailing_fence = TestSkeleton {
            threads: vec![vec![Slot {
                fence_after: true,
                ..Slot::write(0)
            }]],
        };
        assert!(trailing_fence.decode("bad").is_err());
    }

    #[test]
    fn decode_matches_hand_built_program() {
        let skeleton = TestSkeleton {
            threads: vec![
                vec![Slot::write(0), Slot::read(1, SlotRf::Init)],
                vec![Slot::write(1), Slot::read(0, SlotRf::Init)],
            ],
        };
        // Registers are numbered per thread (each thread restarts at r1),
        // matching the canonical naming of the streaming enumeration.
        let by_hand = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(1))
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        assert_eq!(skeleton.decode("sb").unwrap().program(), &by_hand);
    }
}
