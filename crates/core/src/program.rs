//! Multi-threaded litmus programs and a fluent builder.

use std::fmt;

use crate::error::CoreError;
use crate::ids::{Loc, Reg, ThreadId, Value};
use crate::instr::{AddrExpr, FenceKind, Instruction, RegExpr};

/// One thread: a straight-line sequence of [`Instruction`]s.
///
/// Programs in the paper's class are loop-free (loops are unrolled, §2.1),
/// so a thread is simply a vector.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Thread {
    /// The instructions, in program order.
    pub instructions: Vec<Instruction>,
}

impl Thread {
    /// Number of memory-access instructions in the thread.
    #[must_use]
    pub fn access_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_access()).count()
    }
}

/// A parallel program: a fixed set of threads over shared locations.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Program {
    /// The threads. Index `i` is thread `T{i+1}`.
    pub threads: Vec<Thread>,
}

impl Program {
    /// Starts building a program.
    #[must_use]
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Total number of memory-access instructions (the quantity bounded by
    /// Theorem 1).
    #[must_use]
    pub fn access_count(&self) -> usize {
        self.threads.iter().map(Thread::access_count).sum()
    }

    /// All locations mentioned by literal address operands.
    #[must_use]
    pub fn locations(&self) -> Vec<Loc> {
        let mut locs = Vec::new();
        for thread in &self.threads {
            for instr in &thread.instructions {
                let addr = match instr {
                    Instruction::Read { addr, .. } | Instruction::Write { addr, .. } => {
                        Some(addr)
                    }
                    _ => None,
                };
                if let Some(AddrExpr::Loc(loc)) = addr {
                    if !locs.contains(loc) {
                        locs.push(*loc);
                    }
                }
                for expr in Self::exprs_of(instr) {
                    Self::collect_loc_addrs(expr, &mut locs);
                }
            }
        }
        locs.sort();
        locs
    }

    fn exprs_of(instr: &Instruction) -> Vec<&RegExpr> {
        match instr {
            Instruction::Write { val, .. } => vec![val],
            Instruction::Op { expr, .. } => vec![expr],
            Instruction::Branch { cond } => vec![cond],
            _ => vec![],
        }
    }

    fn collect_loc_addrs(expr: &RegExpr, locs: &mut Vec<Loc>) {
        match expr {
            RegExpr::LocAddr(loc) => {
                if !locs.contains(loc) {
                    locs.push(*loc);
                }
            }
            RegExpr::Add(a, b) | RegExpr::Sub(a, b) => {
                Self::collect_loc_addrs(a, locs);
                Self::collect_loc_addrs(b, locs);
            }
            RegExpr::Const(_) | RegExpr::Reg(_) => {}
        }
    }

    /// Statically validates the program:
    ///
    /// * every register is defined (by a read or an op) before use, within
    ///   its thread;
    /// * no register is defined twice (single-assignment keeps outcome
    ///   constraints unambiguous — the paper's tests obey this).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UndefinedRegister`] or
    /// [`CoreError::RegisterRedefined`] naming the offending thread.
    pub fn validate(&self) -> Result<(), CoreError> {
        for (t, thread) in self.threads.iter().enumerate() {
            let tid = ThreadId(u8::try_from(t).expect("thread count fits in u8"));
            let mut defined: Vec<Reg> = Vec::new();
            for instr in &thread.instructions {
                for reg in instr.uses() {
                    if !defined.contains(&reg) {
                        return Err(CoreError::UndefinedRegister { thread: tid, reg });
                    }
                }
                if let Some(reg) = instr.def() {
                    if defined.contains(&reg) {
                        return Err(CoreError::RegisterRedefined { thread: tid, reg });
                    }
                    defined.push(reg);
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, thread) in self.threads.iter().enumerate() {
            writeln!(f, "{}:", ThreadId(t as u8))?;
            for instr in &thread.instructions {
                writeln!(f, "  {instr}")?;
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`Program`].
///
/// # Examples
///
/// The store-buffering shape (paper Figure 3, test L7):
///
/// ```
/// use mcm_core::{Loc, Program, Reg, Value};
///
/// let program = Program::builder()
///     .thread()
///     .write(Loc::X, Value(1))
///     .read(Loc::Y, Reg(1))
///     .thread()
///     .write(Loc::Y, Value(1))
///     .read(Loc::X, Reg(2))
///     .build()
///     .unwrap();
/// assert_eq!(program.threads.len(), 2);
/// assert_eq!(program.access_count(), 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    threads: Vec<Thread>,
}

impl ProgramBuilder {
    /// Opens a new thread; subsequent instructions go to it.
    #[must_use]
    pub fn thread(mut self) -> Self {
        self.threads.push(Thread::default());
        self
    }

    fn current(&mut self) -> &mut Thread {
        assert!(
            !self.threads.is_empty(),
            "call .thread() before adding instructions"
        );
        self.threads.last_mut().expect("non-empty")
    }

    /// Appends an arbitrary instruction.
    #[must_use]
    pub fn instr(mut self, instruction: Instruction) -> Self {
        self.current().instructions.push(instruction);
        self
    }

    /// `read loc -> dst`.
    #[must_use]
    pub fn read(self, loc: Loc, dst: Reg) -> Self {
        self.instr(Instruction::Read {
            addr: AddrExpr::Loc(loc),
            dst,
        })
    }

    /// `read [addr_reg] -> dst` (register-indirect, for address deps).
    #[must_use]
    pub fn read_indirect(self, addr_reg: Reg, dst: Reg) -> Self {
        self.instr(Instruction::Read {
            addr: AddrExpr::Reg(addr_reg),
            dst,
        })
    }

    /// `write loc = value` (constant store).
    #[must_use]
    pub fn write(self, loc: Loc, value: Value) -> Self {
        self.instr(Instruction::Write {
            addr: AddrExpr::Loc(loc),
            val: RegExpr::Const(value),
        })
    }

    /// `write loc = expr` (store of a computed value).
    #[must_use]
    pub fn write_expr(self, loc: Loc, val: RegExpr) -> Self {
        self.instr(Instruction::Write {
            addr: AddrExpr::Loc(loc),
            val,
        })
    }

    /// `write [addr_reg] = expr` (register-indirect store).
    #[must_use]
    pub fn write_indirect(self, addr_reg: Reg, val: RegExpr) -> Self {
        self.instr(Instruction::Write {
            addr: AddrExpr::Reg(addr_reg),
            val,
        })
    }

    /// A full fence.
    #[must_use]
    pub fn fence(self) -> Self {
        self.instr(Instruction::Fence(FenceKind::Full))
    }

    /// A special fence flavour (§3.3).
    #[must_use]
    pub fn special_fence(self, flavour: u8) -> Self {
        self.instr(Instruction::Fence(FenceKind::Special(flavour)))
    }

    /// `dst = expr`.
    #[must_use]
    pub fn op(self, dst: Reg, expr: RegExpr) -> Self {
        self.instr(Instruction::Op { dst, expr })
    }

    /// The paper's dependency idiom: `dst = src - src + value`.
    #[must_use]
    pub fn dep_const(self, dst: Reg, src: Reg, value: Value) -> Self {
        self.op(dst, RegExpr::dep_const(src, value))
    }

    /// The address-dependency idiom: `dst = src - src + &loc`.
    #[must_use]
    pub fn dep_addr(self, dst: Reg, src: Reg, loc: Loc) -> Self {
        self.op(dst, RegExpr::dep_addr(src, loc))
    }

    /// A control-dependency-only branch on `cond`.
    #[must_use]
    pub fn branch_on(self, cond: Reg) -> Self {
        self.instr(Instruction::Branch {
            cond: RegExpr::Reg(cond),
        })
    }

    /// Finishes and validates the program.
    ///
    /// # Errors
    ///
    /// Propagates [`Program::validate`] failures.
    pub fn build(self) -> Result<Program, CoreError> {
        let program = Program {
            threads: self.threads,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_shape() {
        let p = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .fence()
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(2))
            .read(Loc::Y, Reg(2))
            .read(Loc::X, Reg(3))
            .build()
            .unwrap();
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.threads[0].instructions.len(), 3);
        assert_eq!(p.access_count(), 5);
        assert_eq!(p.locations(), vec![Loc::X, Loc::Y]);
    }

    #[test]
    fn undefined_register_is_rejected() {
        let err = Program::builder()
            .thread()
            .write_expr(Loc::X, RegExpr::Reg(Reg(1)))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::UndefinedRegister { .. }));
    }

    #[test]
    fn redefined_register_is_rejected() {
        let err = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .read(Loc::Y, Reg(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::RegisterRedefined { .. }));
    }

    #[test]
    fn dependency_idioms_validate() {
        let p = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .dep_const(Reg(2), Reg(1), Value(1))
            .write_expr(Loc::Y, RegExpr::Reg(Reg(2)))
            .build()
            .unwrap();
        assert_eq!(p.access_count(), 2);
    }

    #[test]
    fn locations_include_address_dependency_targets() {
        let p = Program::builder()
            .thread()
            .read(Loc::Y, Reg(1))
            .dep_addr(Reg(2), Reg(1), Loc::X)
            .read_indirect(Reg(2), Reg(3))
            .build()
            .unwrap();
        assert_eq!(p.locations(), vec![Loc::X, Loc::Y]);
    }

    #[test]
    fn display_is_readable() {
        let p = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .build()
            .unwrap();
        assert_eq!(p.to_string(), "T1:\n  write X = 1\n");
    }
}
