//! Memory models as named must-not-reorder functions.

use std::fmt;

use crate::execution::Execution;
use crate::formula::Formula;
use crate::ids::EventId;

/// A memory consistency model in the paper's class (§2.2): a name plus a
/// must-not-reorder function `F`.
///
/// The model's meaning — the set of allowed program executions — is given
/// by the happens-before axioms, implemented in the `mcm-axiomatic` crate;
/// this type only carries the specification.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemoryModel {
    name: String,
    formula: Formula,
}

impl MemoryModel {
    /// Creates a model from a name and its must-not-reorder function.
    #[must_use]
    pub fn new(name: impl Into<String>, formula: Formula) -> Self {
        MemoryModel {
            name: name.into(),
            formula,
        }
    }

    /// The model's display name (e.g. `TSO`, `M4044`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The must-not-reorder function.
    #[must_use]
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Evaluates `F(x, y)` on two events of `exec`.
    ///
    /// Program-order happens-before edges are generated for same-thread
    /// pairs with `x` po-before `y` where this returns true.
    #[must_use]
    pub fn must_not_reorder(&self, exec: &Execution, x: EventId, y: EventId) -> bool {
        self.formula.eval(exec, x, y)
    }

    /// Returns a copy with a different display name (used when a digit
    /// model is given its conventional name, e.g. `M4044` → `TSO`).
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        MemoryModel {
            name: name.into(),
            formula: self.formula.clone(),
        }
    }
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: F(x,y) = {}", self.name, self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::Outcome;
    use crate::formula::{ArgPos, Atom};
    use crate::ids::{Loc, Reg, ThreadId, Value};
    use crate::program::Program;

    #[test]
    fn model_evaluates_its_formula() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::Y, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(0));
        let exec = Execution::from_program(&program, &outcome).unwrap();
        let ids = exec.thread_events(ThreadId(0)).to_vec();

        let model = MemoryModel::new("ww-only", Formula::pair(
            Atom::IsWrite(ArgPos::First),
            Atom::IsWrite(ArgPos::Second),
            Formula::always(),
        ));
        assert!(!model.must_not_reorder(&exec, ids[0], ids[1]));
        let sc = MemoryModel::new("SC", Formula::always());
        assert!(sc.must_not_reorder(&exec, ids[0], ids[1]));
    }

    #[test]
    fn renamed_keeps_formula() {
        let m = MemoryModel::new("M4044", Formula::always());
        let renamed = m.renamed("TSO");
        assert_eq!(renamed.name(), "TSO");
        assert_eq!(renamed.formula(), m.formula());
    }

    #[test]
    fn display_includes_name_and_formula() {
        let m = MemoryModel::new("SC", Formula::always());
        assert_eq!(m.to_string(), "SC: F(x,y) = True");
    }
}
