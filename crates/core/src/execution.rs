//! Candidate program executions and register dataflow.
//!
//! A litmus test pairs a [`Program`] with an [`Outcome`]
//! (demanded final register values). Because the programs in the paper's
//! class are loop-free and single-assignment, the outcome determines the
//! value observed by every read, and therefore a unique *candidate
//! execution* — the paper's `α_P` (§2.1). Whether the execution is allowed
//! by a memory model is then a question for the happens-before axioms
//! (crate `mcm-axiomatic`).
//!
//! Dependency relations (`DataDep`, `ControlDep`, §2.3) are derived here by
//! syntactic register-taint dataflow: a read taints its destination
//! register, arithmetic propagates taint (even when the value is constant,
//! as in the paper's `t1 = r1 - r1 + 1` idiom), and an instruction depends
//! on every read whose taint reaches one of its operands.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::CoreError;
use crate::event::{Event, EventKind};
use crate::ids::{EventId, Loc, Reg, ThreadId, Value};
use crate::instr::{AddrExpr, Instruction, RegExpr};
use crate::program::Program;

/// Maximum number of events in one execution (relations are 64-bit masks).
pub const MAX_EVENTS: usize = 64;

/// Demanded final register values, e.g. `r1 = 1; r2 = 0`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Outcome {
    constraints: Vec<(ThreadId, Reg, Value)>,
}

impl Outcome {
    /// An empty outcome (valid only for programs with no reads).
    #[must_use]
    pub fn new() -> Self {
        Outcome::default()
    }

    /// Adds the constraint `thread:reg == value`, returning `self`.
    #[must_use]
    pub fn constrain(mut self, thread: ThreadId, reg: Reg, value: Value) -> Self {
        self.constraints.push((thread, reg, value));
        self
    }

    /// The demanded value of `thread:reg`, if constrained.
    #[must_use]
    pub fn get(&self, thread: ThreadId, reg: Reg) -> Option<Value> {
        self.constraints
            .iter()
            .find(|(t, r, _)| *t == thread && *r == reg)
            .map(|(_, _, v)| *v)
    }

    /// All constraints, in insertion order.
    #[must_use]
    pub fn constraints(&self) -> &[(ThreadId, Reg, Value)] {
        &self.constraints
    }

    /// Number of constraints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether there are no constraints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .constraints
            .iter()
            .map(|(t, r, v)| format!("{t}:{r}={v}"))
            .collect();
        write!(f, "{}", parts.join("; "))
    }
}

/// A candidate execution: the events of every thread with concrete values,
/// plus derived dependency relations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Execution {
    events: Vec<Event>,
    thread_events: Vec<Vec<EventId>>,
    /// Bit `x` of `data_dep[y]`: read `x` feeds a *value* operand of `y`.
    data_dep: Vec<u64>,
    /// Bit `x` of `addr_dep[y]`: read `x` feeds the *address* operand of `y`.
    addr_dep: Vec<u64>,
    /// Bit `x` of `ctrl_dep[y]`: `y` is po-after a branch conditioned on `x`.
    ctrl_dep: Vec<u64>,
}

impl Execution {
    /// Derives the candidate execution of `program` under `outcome`.
    ///
    /// Every read's destination register must be constrained (reads are
    /// where nondeterminism enters); constraints on `Op` destinations are
    /// checked against the computed value.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] if the program fails validation, an outcome
    /// constraint is missing/unknown/duplicated/inconsistent, or an indirect
    /// access resolves to a non-address value.
    ///
    /// # Panics
    ///
    /// Panics if the program has more than [`MAX_EVENTS`] instructions or
    /// more than 255 threads; litmus tests are small by construction
    /// (Theorem 1 bounds the interesting ones at two threads and six
    /// accesses).
    pub fn from_program(program: &Program, outcome: &Outcome) -> Result<Execution, CoreError> {
        program.validate()?;
        let total: usize = program.threads.iter().map(|t| t.instructions.len()).sum();
        assert!(total <= MAX_EVENTS, "execution exceeds {MAX_EVENTS} events");
        assert!(program.threads.len() <= 255, "too many threads");

        // Validate outcome constraints refer to defined registers, once each.
        let mut seen: Vec<(ThreadId, Reg)> = Vec::new();
        for &(thread, reg, _) in outcome.constraints() {
            if thread.index() >= program.threads.len() {
                return Err(CoreError::UnknownThread { thread });
            }
            if seen.contains(&(thread, reg)) {
                return Err(CoreError::DuplicateConstraint { thread, reg });
            }
            seen.push((thread, reg));
            let defined = program.threads[thread.index()]
                .instructions
                .iter()
                .any(|i| i.def() == Some(reg));
            if !defined {
                return Err(CoreError::ConstraintOnUnknownRegister { thread, reg });
            }
        }

        let mut events: Vec<Event> = Vec::with_capacity(total);
        let mut thread_events: Vec<Vec<EventId>> = Vec::new();
        let mut data_dep: Vec<u64> = Vec::with_capacity(total);
        let mut addr_dep: Vec<u64> = Vec::with_capacity(total);
        let mut ctrl_dep: Vec<u64> = Vec::with_capacity(total);

        for (t, thread) in program.threads.iter().enumerate() {
            let tid = ThreadId(u8::try_from(t).expect("checked above"));
            let mut ids = Vec::with_capacity(thread.instructions.len());
            // Register file: value and taint (set of read events feeding it).
            let mut regs: BTreeMap<Reg, (Value, u64)> = BTreeMap::new();
            let mut ctrl_taint: u64 = 0;

            for (po_index, instr) in thread.instructions.iter().enumerate() {
                let id = EventId(u32::try_from(events.len()).expect("fits"));
                let bit = 1u64 << id.index();
                let mut ev_data = 0u64;
                let mut ev_addr = 0u64;
                // An event is control-dependent on branches strictly before
                // it, so capture the taint before this instruction runs.
                let ctrl_before = ctrl_taint;

                let kind = match instr {
                    Instruction::Read { addr, dst } => {
                        let (loc, taint) = resolve_addr(addr, &regs, tid)?;
                        ev_addr |= taint;
                        let value = outcome
                            .get(tid, *dst)
                            .ok_or(CoreError::UnconstrainedRead { thread: tid, reg: *dst })?;
                        regs.insert(*dst, (value, bit));
                        EventKind::Read { loc, value }
                    }
                    Instruction::Write { addr, val } => {
                        let (loc, taint) = resolve_addr(addr, &regs, tid)?;
                        ev_addr |= taint;
                        let (value, vtaint) = eval(val, &regs);
                        ev_data |= vtaint;
                        EventKind::Write { loc, value }
                    }
                    Instruction::Fence(kind) => EventKind::Fence(*kind),
                    Instruction::Op { dst, expr } => {
                        let (value, taint) = eval(expr, &regs);
                        if let Some(demanded) = outcome.get(tid, *dst) {
                            if demanded != value {
                                return Err(CoreError::InconsistentConstraint {
                                    thread: tid,
                                    reg: *dst,
                                    computed: value,
                                    demanded,
                                });
                            }
                        }
                        ev_data |= taint;
                        regs.insert(*dst, (value, taint));
                        EventKind::Op
                    }
                    Instruction::Branch { cond } => {
                        let (_, taint) = eval(cond, &regs);
                        ev_data |= taint;
                        ctrl_taint |= taint;
                        EventKind::Branch
                    }
                };

                events.push(Event {
                    id,
                    thread: tid,
                    po_index,
                    kind,
                });
                data_dep.push(ev_data);
                addr_dep.push(ev_addr);
                ctrl_dep.push(ctrl_before);
                ids.push(id);
            }
            thread_events.push(ids);
        }

        Ok(Execution {
            events,
            thread_events,
            data_dep,
            addr_dep,
            ctrl_dep,
        })
    }

    /// All events, indexed by [`EventId`].
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event with the given id.
    #[must_use]
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Number of threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.thread_events.len()
    }

    /// Event ids of one thread, in program order.
    #[must_use]
    pub fn thread_events(&self, thread: ThreadId) -> &[EventId] {
        &self.thread_events[thread.index()]
    }

    /// Whether `x` and `y` are on the same thread.
    #[must_use]
    pub fn same_thread(&self, x: EventId, y: EventId) -> bool {
        self.event(x).thread == self.event(y).thread
    }

    /// Whether `x` precedes `y` in program order (same thread, earlier).
    #[must_use]
    pub fn po_earlier(&self, x: EventId, y: EventId) -> bool {
        self.same_thread(x, y) && self.event(x).po_index < self.event(y).po_index
    }

    /// The paper's `DataDep(x, y)`: `x` is a read whose value feeds an
    /// operand (value *or* address) of `y`. The address case is what tests
    /// L4 and L8 use.
    #[must_use]
    pub fn data_dep(&self, x: EventId, y: EventId) -> bool {
        let bit = 1u64 << x.index();
        (self.data_dep[y.index()] | self.addr_dep[y.index()]) & bit != 0
    }

    /// Address-dependency component of [`Execution::data_dep`] only.
    #[must_use]
    pub fn addr_dep(&self, x: EventId, y: EventId) -> bool {
        self.addr_dep[y.index()] & (1u64 << x.index()) != 0
    }

    /// Value-dependency component of [`Execution::data_dep`] only.
    #[must_use]
    pub fn value_dep(&self, x: EventId, y: EventId) -> bool {
        self.data_dep[y.index()] & (1u64 << x.index()) != 0
    }

    /// `ControlDep(x, y)`: `y` is po-after a branch whose condition was fed
    /// by read `x`.
    #[must_use]
    pub fn ctrl_dep(&self, x: EventId, y: EventId) -> bool {
        self.ctrl_dep[y.index()] & (1u64 << x.index()) != 0
    }

    /// All read events.
    pub fn reads(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.is_read())
    }

    /// All write events.
    pub fn writes(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.is_write())
    }

    /// All write events to `loc`.
    pub fn writes_to(&self, loc: Loc) -> impl Iterator<Item = &Event> + '_ {
        self.writes().filter(move |e| e.loc() == Some(loc))
    }
}

fn eval(expr: &RegExpr, regs: &BTreeMap<Reg, (Value, u64)>) -> (Value, u64) {
    match expr {
        RegExpr::Const(v) => (*v, 0),
        RegExpr::LocAddr(loc) => (loc.base_address(), 0),
        RegExpr::Reg(r) => *regs
            .get(r)
            .expect("validated: registers are defined before use"),
        RegExpr::Add(a, b) => {
            let (va, ta) = eval(a, regs);
            let (vb, tb) = eval(b, regs);
            (Value(va.0.wrapping_add(vb.0)), ta | tb)
        }
        RegExpr::Sub(a, b) => {
            let (va, ta) = eval(a, regs);
            let (vb, tb) = eval(b, regs);
            (Value(va.0.wrapping_sub(vb.0)), ta | tb)
        }
    }
}

fn resolve_addr(
    addr: &AddrExpr,
    regs: &BTreeMap<Reg, (Value, u64)>,
    thread: ThreadId,
) -> Result<(Loc, u64), CoreError> {
    match addr {
        AddrExpr::Loc(loc) => Ok((*loc, 0)),
        AddrExpr::Reg(r) => {
            let (value, taint) = *regs
                .get(r)
                .expect("validated: registers are defined before use");
            let loc = Loc::from_address(value)
                .ok_or(CoreError::InvalidAddress { thread, value })?;
            Ok((loc, taint))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Loc;
    use crate::program::Program;

    fn t1() -> ThreadId {
        ThreadId(0)
    }

    #[test]
    fn sb_execution_has_expected_events() {
        // Store buffering: W X=1; R Y -> r1 || W Y=1; R X -> r2.
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(ThreadId(0), Reg(1), Value(0))
            .constrain(ThreadId(1), Reg(2), Value(0));
        let exec = Execution::from_program(&program, &outcome).unwrap();
        assert_eq!(exec.events().len(), 4);
        assert_eq!(exec.num_threads(), 2);
        assert_eq!(exec.reads().count(), 2);
        assert_eq!(exec.writes().count(), 2);
        let read1 = exec.thread_events(ThreadId(0))[1];
        assert_eq!(exec.event(read1).value(), Some(Value(0)));
        assert!(exec.po_earlier(exec.thread_events(t1())[0], read1));
        assert!(!exec.po_earlier(read1, exec.thread_events(t1())[0]));
    }

    #[test]
    fn unconstrained_read_is_an_error() {
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let err = Execution::from_program(&program, &Outcome::new()).unwrap_err();
        assert!(matches!(err, CoreError::UnconstrainedRead { .. }));
    }

    #[test]
    fn data_dependency_via_arithmetic_idiom() {
        // R X -> r1; t2 = r1 - r1 + 1; W Y = t2  (paper test L6 shape).
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .dep_const(Reg(2), Reg(1), Value(1))
            .write_expr(Loc::Y, RegExpr::Reg(Reg(2)))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(t1(), Reg(1), Value(1));
        let exec = Execution::from_program(&program, &outcome).unwrap();
        let ids = exec.thread_events(t1()).to_vec();
        let (read, op, write) = (ids[0], ids[1], ids[2]);
        assert!(exec.data_dep(read, write), "read feeds the write's value");
        assert!(exec.data_dep(read, op));
        assert!(!exec.data_dep(read, read));
        assert!(!exec.addr_dep(read, write), "no address dependency here");
        // The computed value flows: write stores 1.
        assert_eq!(exec.event(write).value(), Some(Value(1)));
    }

    #[test]
    fn address_dependency_via_indirect_read() {
        // R Y -> r1; t1 = r1 - r1 + &X; R [t1] -> r2  (paper test L4 shape).
        let program = Program::builder()
            .thread()
            .read(Loc::Y, Reg(1))
            .dep_addr(Reg(2), Reg(1), Loc::X)
            .read_indirect(Reg(2), Reg(3))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(t1(), Reg(1), Value(2))
            .constrain(t1(), Reg(3), Value(0));
        let exec = Execution::from_program(&program, &outcome).unwrap();
        let ids = exec.thread_events(t1()).to_vec();
        let (read1, read2) = (ids[0], ids[2]);
        assert!(exec.addr_dep(read1, read2));
        assert!(exec.data_dep(read1, read2), "DataDep includes address deps");
        assert!(!exec.value_dep(read1, read2));
        // The indirect read resolved to X.
        assert_eq!(exec.event(read2).loc(), Some(Loc::X));
    }

    #[test]
    fn control_dependency_covers_everything_after_the_branch() {
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .branch_on(Reg(1))
            .write(Loc::Y, Value(1))
            .write(Loc::Z, Value(2))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(t1(), Reg(1), Value(1));
        let exec = Execution::from_program(&program, &outcome).unwrap();
        let ids = exec.thread_events(t1()).to_vec();
        let (read, branch, w1, w2) = (ids[0], ids[1], ids[2], ids[3]);
        assert!(exec.ctrl_dep(read, w1));
        assert!(exec.ctrl_dep(read, w2));
        assert!(!exec.ctrl_dep(read, branch), "branch itself is not ctrl-dependent");
        assert!(!exec.ctrl_dep(read, read));
        assert!(!exec.data_dep(read, w1), "ctrl dep is not data dep");
    }

    #[test]
    fn computed_register_constraint_is_checked() {
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .dep_const(Reg(2), Reg(1), Value(7))
            .build()
            .unwrap();
        let ok = Outcome::new()
            .constrain(t1(), Reg(1), Value(3))
            .constrain(t1(), Reg(2), Value(7));
        assert!(Execution::from_program(&program, &ok).is_ok());
        let bad = Outcome::new()
            .constrain(t1(), Reg(1), Value(3))
            .constrain(t1(), Reg(2), Value(8));
        let err = Execution::from_program(&program, &bad).unwrap_err();
        assert!(matches!(err, CoreError::InconsistentConstraint { .. }));
    }

    #[test]
    fn bad_indirect_address_is_an_error() {
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .read_indirect(Reg(1), Reg(2))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(t1(), Reg(1), Value(42))
            .constrain(t1(), Reg(2), Value(0));
        let err = Execution::from_program(&program, &outcome).unwrap_err();
        assert!(matches!(err, CoreError::InvalidAddress { .. }));
    }

    #[test]
    fn duplicate_and_unknown_constraints_are_errors() {
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let dup = Outcome::new()
            .constrain(t1(), Reg(1), Value(0))
            .constrain(t1(), Reg(1), Value(0));
        assert!(matches!(
            Execution::from_program(&program, &dup).unwrap_err(),
            CoreError::DuplicateConstraint { .. }
        ));
        let unknown = Outcome::new()
            .constrain(t1(), Reg(1), Value(0))
            .constrain(t1(), Reg(9), Value(0));
        assert!(matches!(
            Execution::from_program(&program, &unknown).unwrap_err(),
            CoreError::ConstraintOnUnknownRegister { .. }
        ));
        let bad_thread = Outcome::new()
            .constrain(t1(), Reg(1), Value(0))
            .constrain(ThreadId(4), Reg(1), Value(0));
        assert!(matches!(
            Execution::from_program(&program, &bad_thread).unwrap_err(),
            CoreError::UnknownThread { .. }
        ));
    }

    #[test]
    fn outcome_display() {
        let o = Outcome::new()
            .constrain(t1(), Reg(1), Value(2))
            .constrain(ThreadId(1), Reg(2), Value(0));
        assert_eq!(o.to_string(), "T1:r1=2; T2:r2=0");
    }
}
