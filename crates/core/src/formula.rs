//! The *must-not-reorder* function DSL (paper §2.3).
//!
//! A memory model in the paper's class is specified by a quantifier-free
//! **positive** boolean function `F(x, y)` over a set of predicates on
//! instruction executions. If `F(x, y)` holds for two events of the same
//! thread with `x` before `y` in program order, the pair must execute in
//! order (it contributes a happens-before edge).
//!
//! Positivity is enforced structurally: [`Formula`] has conjunction and
//! disjunction but no negation. The predicate set matches the paper's
//! examples — `Read`, `Write`, `Fence`, `SameAddr`, `DataDep` — plus
//! `ControlDep` (which the paper's framework supports but its tool did not
//! implement) and custom fence-flavour predicates for the §3.3 experiments.
//!
//! All predicates respect the symmetry requirement of §2.3: they depend
//! only on event kinds, address *equality* and dependency relations, never
//! on concrete values, location names or register names, so any two reads
//! (or writes) can be permuted.

use std::fmt;

use crate::execution::Execution;
use crate::ids::EventId;

/// Which of the two arguments of `F(x, y)` a unary predicate inspects.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArgPos {
    /// The program-order-earlier event `x`.
    First,
    /// The program-order-later event `y`.
    Second,
}

impl fmt::Display for ArgPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgPos::First => write!(f, "x"),
            ArgPos::Second => write!(f, "y"),
        }
    }
}

/// An atomic predicate on an event pair `(x, y)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// `Read(arg)`: the argument is a memory read.
    IsRead(ArgPos),
    /// `Write(arg)`: the argument is a memory write.
    IsWrite(ArgPos),
    /// `Fence(arg)`: the argument is a full fence.
    IsFence(ArgPos),
    /// The argument is a memory access (read or write).
    IsAccess(ArgPos),
    /// The argument is a special fence of the given flavour (§3.3).
    IsSpecialFence(u8, ArgPos),
    /// `SameAddr(x, y)`: both are accesses of the same location.
    SameAddr,
    /// `DataDep(x, y)`: `x` is a read feeding a value or address operand of
    /// `y` (the paper's single data-dependency predicate).
    DataDep,
    /// `ControlDep(x, y)`: `y` is po-after a branch conditioned on read `x`.
    CtrlDep,
}

impl Atom {
    /// Evaluates the predicate on events `x`, `y` of `exec`.
    #[must_use]
    pub fn eval(self, exec: &Execution, x: EventId, y: EventId) -> bool {
        let pick = |pos: ArgPos| match pos {
            ArgPos::First => exec.event(x),
            ArgPos::Second => exec.event(y),
        };
        match self {
            Atom::IsRead(pos) => pick(pos).is_read(),
            Atom::IsWrite(pos) => pick(pos).is_write(),
            Atom::IsFence(pos) => pick(pos).is_full_fence(),
            Atom::IsAccess(pos) => pick(pos).is_access(),
            Atom::IsSpecialFence(flavour, pos) => {
                pick(pos).is_fence_kind(crate::instr::FenceKind::Special(flavour))
            }
            Atom::SameAddr => match (exec.event(x).loc(), exec.event(y).loc()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
            Atom::DataDep => exec.data_dep(x, y),
            Atom::CtrlDep => exec.ctrl_dep(x, y),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::IsRead(p) => write!(f, "Read({p})"),
            Atom::IsWrite(p) => write!(f, "Write({p})"),
            Atom::IsFence(p) => write!(f, "Fence({p})"),
            Atom::IsAccess(p) => write!(f, "Access({p})"),
            Atom::IsSpecialFence(n, p) => write!(f, "SpecialFence{n}({p})"),
            Atom::SameAddr => write!(f, "SameAddr(x,y)"),
            Atom::DataDep => write!(f, "DataDep(x,y)"),
            Atom::CtrlDep => write!(f, "ControlDep(x,y)"),
        }
    }
}

/// A positive boolean combination of [`Atom`]s.
///
/// # Examples
///
/// SPARC TSO as written in the paper (§2.4):
/// `F_TSO(x,y) = (Write(x) ∧ Write(y)) ∨ Read(x) ∨ Fence(x) ∨ Fence(y)`.
///
/// ```
/// use mcm_core::formula::{Formula, Atom, ArgPos};
///
/// let f_tso = Formula::or([
///     Formula::and([
///         Formula::atom(Atom::IsWrite(ArgPos::First)),
///         Formula::atom(Atom::IsWrite(ArgPos::Second)),
///     ]),
///     Formula::atom(Atom::IsRead(ArgPos::First)),
///     Formula::fence_either(),
/// ]);
/// assert!(f_tso.to_string().contains("Write(x)"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// Constant true (every program-ordered pair constrained) or false (no
    /// pair constrained).
    ///
    /// Note: the paper's §2.4 writes `F_SC = False`, but with a
    /// *must-not-reorder* reading SC — which allows no reordering at all —
    /// is `F = True`; `False` would be the weakest model in the class. The
    /// IBM370/TSO/RMO examples in the same section confirm the
    /// must-not-reorder reading, so we treat `F_SC = False` as a typo and
    /// define SC with [`Formula::always`].
    Const(bool),
    /// An atomic predicate.
    Atom(Atom),
    /// Conjunction of all children (empty = true).
    And(Vec<Formula>),
    /// Disjunction of all children (empty = false).
    Or(Vec<Formula>),
}

impl Formula {
    /// The constant `true` (order *every* program-ordered pair — SC).
    #[must_use]
    pub fn always() -> Formula {
        Formula::Const(true)
    }

    /// The constant `false` (no pair constrained by this disjunct).
    #[must_use]
    pub fn never() -> Formula {
        Formula::Const(false)
    }

    /// Wraps an atom.
    #[must_use]
    pub fn atom(atom: Atom) -> Formula {
        Formula::Atom(atom)
    }

    /// Conjunction.
    #[must_use]
    pub fn and<I: IntoIterator<Item = Formula>>(children: I) -> Formula {
        Formula::And(children.into_iter().collect())
    }

    /// Disjunction.
    #[must_use]
    pub fn or<I: IntoIterator<Item = Formula>>(children: I) -> Formula {
        Formula::Or(children.into_iter().collect())
    }

    /// `Fence(x) ∨ Fence(y)`: the standard full-fence disjunct.
    #[must_use]
    pub fn fence_either() -> Formula {
        Formula::or([
            Formula::atom(Atom::IsFence(ArgPos::First)),
            Formula::atom(Atom::IsFence(ArgPos::Second)),
        ])
    }

    /// `KindA(x) ∧ KindB(y) ∧ extra`: a typed pair constraint, the building
    /// block of the digit models of §4.2.
    #[must_use]
    pub fn pair(first: Atom, second: Atom, extra: Formula) -> Formula {
        Formula::and([Formula::atom(first), Formula::atom(second), extra])
    }

    /// Evaluates `F(x, y)` on two events of `exec`.
    ///
    /// The caller decides which pairs to ask about; the program-order axiom
    /// applies this to all same-thread pairs with `x` po-before `y`.
    #[must_use]
    pub fn eval(&self, exec: &Execution, x: EventId, y: EventId) -> bool {
        match self {
            Formula::Const(b) => *b,
            Formula::Atom(a) => a.eval(exec, x, y),
            Formula::And(children) => children.iter().all(|c| c.eval(exec, x, y)),
            Formula::Or(children) => children.iter().any(|c| c.eval(exec, x, y)),
        }
    }

    /// All atoms mentioned, in syntactic order (with duplicates).
    #[must_use]
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Formula::Const(_) => {}
            Formula::Atom(a) => out.push(*a),
            Formula::And(children) | Formula::Or(children) => {
                for c in children {
                    c.collect_atoms(out);
                }
            }
        }
    }

    /// Whether the formula mentions a dependency predicate (used to pick
    /// between the 230-test and 124-test suites, Corollary 1).
    #[must_use]
    pub fn uses_dependencies(&self) -> bool {
        self.atoms()
            .iter()
            .any(|a| matches!(a, Atom::DataDep | Atom::CtrlDep))
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Const(true) => write!(f, "True"),
            Formula::Const(false) => write!(f, "False"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::And(children) => {
                if children.is_empty() {
                    return write!(f, "True");
                }
                let parts: Vec<String> = children
                    .iter()
                    .map(|c| match c {
                        Formula::Or(inner) if inner.len() > 1 => format!("({c})"),
                        _ => c.to_string(),
                    })
                    .collect();
                write!(f, "{}", parts.join(" ∧ "))
            }
            Formula::Or(children) => {
                if children.is_empty() {
                    return write!(f, "False");
                }
                let parts: Vec<String> = children.iter().map(ToString::to_string).collect();
                write!(f, "{}", parts.join(" ∨ "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::Outcome;
    use crate::ids::{Loc, Reg, ThreadId, Value};
    use crate::program::Program;

    fn two_writes_and_read() -> Execution {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .write(Loc::X, Value(2))
            .read(Loc::Y, Reg(1))
            .build()
            .unwrap();
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(0));
        Execution::from_program(&program, &outcome).unwrap()
    }

    #[test]
    fn atoms_evaluate_on_events() {
        let exec = two_writes_and_read();
        let ids = exec.thread_events(ThreadId(0)).to_vec();
        let (w1, w2, r) = (ids[0], ids[1], ids[2]);
        assert!(Atom::IsWrite(ArgPos::First).eval(&exec, w1, r));
        assert!(Atom::IsRead(ArgPos::Second).eval(&exec, w1, r));
        assert!(!Atom::IsRead(ArgPos::First).eval(&exec, w1, r));
        assert!(Atom::SameAddr.eval(&exec, w1, w2));
        assert!(!Atom::SameAddr.eval(&exec, w1, r));
        assert!(Atom::IsAccess(ArgPos::First).eval(&exec, w1, w2));
    }

    #[test]
    fn constants_and_connectives() {
        let exec = two_writes_and_read();
        let ids = exec.thread_events(ThreadId(0)).to_vec();
        let (w1, w2) = (ids[0], ids[1]);
        assert!(Formula::always().eval(&exec, w1, w2));
        assert!(!Formula::never().eval(&exec, w1, w2));
        let ww_same = Formula::pair(
            Atom::IsWrite(ArgPos::First),
            Atom::IsWrite(ArgPos::Second),
            Formula::atom(Atom::SameAddr),
        );
        assert!(ww_same.eval(&exec, w1, w2));
        let empty_and = Formula::and([]);
        assert!(empty_and.eval(&exec, w1, w2));
        let empty_or = Formula::or([]);
        assert!(!empty_or.eval(&exec, w1, w2));
    }

    #[test]
    fn display_matches_paper_style() {
        let f = Formula::or([
            Formula::and([
                Formula::atom(Atom::IsWrite(ArgPos::First)),
                Formula::atom(Atom::IsWrite(ArgPos::Second)),
            ]),
            Formula::atom(Atom::IsRead(ArgPos::First)),
        ]);
        assert_eq!(f.to_string(), "Write(x) ∧ Write(y) ∨ Read(x)");
    }

    #[test]
    fn uses_dependencies_detects_dep_atoms() {
        assert!(!Formula::fence_either().uses_dependencies());
        assert!(Formula::atom(Atom::DataDep).uses_dependencies());
        assert!(Formula::and([
            Formula::atom(Atom::SameAddr),
            Formula::or([Formula::atom(Atom::CtrlDep)]),
        ])
        .uses_dependencies());
    }
}
