//! Newtype identifiers used throughout the workspace.

use std::fmt;

/// A shared-memory location (the paper's `X`, `Y`, `Z`, `W`).
///
/// Locations are abstract names; [`Loc::base_address`] gives each one a
/// distinct numeric "address" so that address dependencies (`t1 = r1 - r1 +
/// X; Read [t1]`) can be expressed with ordinary arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Loc(pub u8);

impl Loc {
    /// The canonical first four locations, named as in the paper.
    pub const X: Loc = Loc(0);
    /// Second location.
    pub const Y: Loc = Loc(1);
    /// Third location.
    pub const Z: Loc = Loc(2);
    /// Fourth location.
    pub const W: Loc = Loc(3);

    /// The numeric address of this location (used by address arithmetic).
    ///
    /// Addresses are spaced so no arithmetic in realistic litmus tests can
    /// accidentally turn one location's address into another's.
    #[must_use]
    pub fn base_address(self) -> Value {
        Value(0x1000 + 0x100 * i64::from(self.0))
    }

    /// Inverse of [`Loc::base_address`].
    #[must_use]
    pub fn from_address(value: Value) -> Option<Loc> {
        let off = value.0 - 0x1000;
        if off >= 0 && off % 0x100 == 0 && off / 0x100 <= i64::from(u8::MAX) {
            Some(Loc(u8::try_from(off / 0x100).expect("range checked")))
        } else {
            None
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "X"),
            1 => write!(f, "Y"),
            2 => write!(f, "Z"),
            3 => write!(f, "W"),
            n => write!(f, "L{n}"),
        }
    }
}

/// A per-thread register (`r1`, `r2`, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A runtime value (register contents or memory contents).
///
/// All locations initially hold [`Value::INIT`] (zero), as in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Value(pub i64);

impl Value {
    /// The initial value of every memory location.
    pub const INIT: Value = Value(0);
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value(v)
    }
}

/// A thread index within a program (displayed one-based as `T1`, `T2`, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// Zero-based index into [`crate::Program::threads`].
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// A global index of an instruction execution (an *event*) in an
/// [`crate::Execution`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u32);

impl EventId {
    /// Zero-based index into [`crate::Execution::events`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_addresses_round_trip() {
        for i in 0..10u8 {
            let loc = Loc(i);
            assert_eq!(Loc::from_address(loc.base_address()), Some(loc));
        }
    }

    #[test]
    fn non_addresses_do_not_resolve() {
        assert_eq!(Loc::from_address(Value(0)), None);
        assert_eq!(Loc::from_address(Value(0x1001)), None);
        assert_eq!(Loc::from_address(Value(-0x1000)), None);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Loc::X.to_string(), "X");
        assert_eq!(Loc::Y.to_string(), "Y");
        assert_eq!(Loc::Z.to_string(), "Z");
        assert_eq!(Loc::W.to_string(), "W");
        assert_eq!(Loc(7).to_string(), "L7");
        assert_eq!(ThreadId(0).to_string(), "T1");
        assert_eq!(Reg(3).to_string(), "r3");
    }

    #[test]
    fn distinct_locations_have_distinct_addresses() {
        let addresses: Vec<Value> = (0..20u8).map(|i| Loc(i).base_address()).collect();
        let mut deduped = addresses.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(addresses.len(), deduped.len());
    }
}
