//! Instruction executions ("events").
//!
//! The paper (§2.1) calls an instruction annotated with concrete register
//! values an *instruction execution*; we follow the memory-model literature
//! and call these events.

use std::fmt;

use crate::ids::{EventId, Loc, ThreadId, Value};
use crate::instr::FenceKind;

/// The observable shape of an event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    /// A read of `loc` observing `value`.
    Read {
        /// Location read.
        loc: Loc,
        /// Value observed.
        value: Value,
    },
    /// A write of `value` to `loc`.
    Write {
        /// Location written.
        loc: Loc,
        /// Value stored.
        value: Value,
    },
    /// A fence of the given kind.
    Fence(FenceKind),
    /// Register arithmetic (no memory effect).
    Op,
    /// A dependency-only branch (no memory effect).
    Branch,
}

/// An instruction execution with its concrete values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Event {
    /// Globally unique id; also the index into [`crate::Execution::events`].
    pub id: EventId,
    /// The thread this event executes on.
    pub thread: ThreadId,
    /// Zero-based program-order position within the thread (counting all
    /// instructions, memory and non-memory alike).
    pub po_index: usize,
    /// What the event does.
    pub kind: EventKind,
}

impl Event {
    /// Whether the event is a memory read.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self.kind, EventKind::Read { .. })
    }

    /// Whether the event is a memory write.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self.kind, EventKind::Write { .. })
    }

    /// Whether the event is a memory access (read or write).
    #[must_use]
    pub fn is_access(&self) -> bool {
        self.is_read() || self.is_write()
    }

    /// Whether the event is a *full* fence ([`FenceKind::Full`]).
    #[must_use]
    pub fn is_full_fence(&self) -> bool {
        matches!(self.kind, EventKind::Fence(FenceKind::Full))
    }

    /// Whether the event is a fence of the given kind.
    #[must_use]
    pub fn is_fence_kind(&self, kind: FenceKind) -> bool {
        matches!(self.kind, EventKind::Fence(k) if k == kind)
    }

    /// The location accessed, for reads and writes.
    #[must_use]
    pub fn loc(&self) -> Option<Loc> {
        match self.kind {
            EventKind::Read { loc, .. } | EventKind::Write { loc, .. } => Some(loc),
            _ => None,
        }
    }

    /// The value read or written, for reads and writes.
    #[must_use]
    pub fn value(&self) -> Option<Value> {
        match self.kind {
            EventKind::Read { value, .. } | EventKind::Write { value, .. } => Some(value),
            _ => None,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EventKind::Read { loc, value } => {
                write!(f, "{}:{} R {loc}={value}", self.thread, self.id)
            }
            EventKind::Write { loc, value } => {
                write!(f, "{}:{} W {loc}={value}", self.thread, self.id)
            }
            EventKind::Fence(kind) => write!(f, "{}:{} {kind}", self.thread, self.id),
            EventKind::Op => write!(f, "{}:{} op", self.thread, self.id),
            EventKind::Branch => write!(f, "{}:{} branch", self.thread, self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: EventKind) -> Event {
        Event {
            id: EventId(0),
            thread: ThreadId(0),
            po_index: 0,
            kind,
        }
    }

    #[test]
    fn classification() {
        let r = event(EventKind::Read {
            loc: Loc::X,
            value: Value(1),
        });
        assert!(r.is_read() && r.is_access() && !r.is_write());
        assert_eq!(r.loc(), Some(Loc::X));
        assert_eq!(r.value(), Some(Value(1)));

        let w = event(EventKind::Write {
            loc: Loc::Y,
            value: Value(2),
        });
        assert!(w.is_write() && w.is_access() && !w.is_read());

        let fence = event(EventKind::Fence(FenceKind::Full));
        assert!(fence.is_full_fence());
        assert!(!fence.is_access());
        assert_eq!(fence.loc(), None);

        let special = event(EventKind::Fence(FenceKind::Special(3)));
        assert!(!special.is_full_fence());
        assert!(special.is_fence_kind(FenceKind::Special(3)));
        assert!(!special.is_fence_kind(FenceKind::Special(4)));
    }

    #[test]
    fn display_forms() {
        let r = event(EventKind::Read {
            loc: Loc::X,
            value: Value(0),
        });
        assert_eq!(r.to_string(), "T1:e0 R X=0");
    }
}
