//! A small, dependency-free JSON document model with an emitter and a
//! parser.
//!
//! The query layer (`mcm-query`) renders every report as a
//! schema-versioned JSON document; this module is the in-tree
//! serialization substrate, so the workspace stays free of network
//! dependencies. The emitter produces canonical output (object key order
//! preserved, shortest round-tripping floats), and the parser accepts any
//! RFC 8259 document, so `parse(emit(doc)) == doc` for every document
//! whose floats are finite — the golden-file tests and the CI
//! `json-smoke` job rely on that round trip. (JSON has no NaN/infinity;
//! a non-finite [`Json::Float`] emits as `null`, so build ratio fields
//! from finite values only.)
//!
//! ## Example
//!
//! ```
//! use mcm_core::json::Json;
//!
//! let doc = Json::object([
//!     ("schema_version", Json::from(1u64)),
//!     ("models", Json::from(vec![Json::from("SC"), Json::from("TSO")])),
//! ]);
//! let text = doc.pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back, doc);
//! assert_eq!(back.get("schema_version").and_then(Json::as_u64), Some(1));
//! ```

use std::fmt;

/// A JSON value: the document model shared by the emitter and parser.
///
/// Numbers are split into [`Json::Int`] and [`Json::Float`] so integer
/// counters survive a round trip exactly; the two variants never compare
/// equal, and the emitter keeps them distinct (`4` vs `4.0`).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (no decimal point or exponent in the source).
    Int(i64),
    /// A non-integer number. Only finite values are representable; the
    /// emitter writes NaN or infinity as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, with insertion order preserved (reports render their
    /// keys in a stable, documented order).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by mapping `f` over `items`.
    pub fn array_of<T>(items: impl IntoIterator<Item = T>, f: impl Fn(T) -> Json) -> Json {
        Json::Array(items.into_iter().map(f).collect())
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as unsigned, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The numeric payload widened to `f64` (integers included).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering: two-space indentation, one field or element per
    /// line, trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Float(x) if x.is_finite() => {
                // `{:?}` for f64 is Rust's shortest round-tripping form
                // and always contains `.` or `e`, so it re-parses as Float.
                let _ = fmt::Write::write_fmt(out, format_args!("{x:?}"));
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    write_string(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Removes every object field named in `keys`, at any nesting depth.
    ///
    /// Reports carry volatile wall-clock fields (`elapsed_ms`) alongside
    /// deterministic payloads; black-box harnesses that compare a served
    /// document against a directly computed one strip the volatile keys
    /// first and then demand byte identity on the rest.
    pub fn strip_keys(&mut self, keys: &[&str]) {
        match self {
            Json::Object(pairs) => {
                pairs.retain(|(k, _)| !keys.contains(&k.as_str()));
                for (_, v) in pairs.iter_mut() {
                    v.strip_keys(keys);
                }
            }
            Json::Array(items) => {
                for item in items.iter_mut() {
                    item.strip_keys(keys);
                }
            }
            _ => {}
        }
    }

    /// Parses a JSON document. The whole input must be one value plus
    /// optional trailing whitespace.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset and what went wrong.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Counters far beyond i64 do not occur in reports; saturate
        // rather than wrap if one ever does.
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

impl<T> From<Option<T>> for Json
where
    Json: From<T>,
{
    fn from(v: Option<T>) -> Json {
        match v {
            Some(v) => Json::from(v),
            None => Json::Null,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

/// A parse failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: protects the recursive-descent parser from stack
/// exhaustion on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest plain run in one step.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("raw control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let first = self.hex4()?;
                let scalar = if (0xd800..0xdc00).contains(&first) {
                    // High surrogate: a low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.error("unpaired surrogate escape"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.error("unpaired surrogate escape"));
                    }
                    self.pos += 1;
                    let second = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&second) {
                        return Err(self.error("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                } else {
                    first
                };
                out.push(
                    char::from_u32(scalar)
                        .ok_or_else(|| self.error("escape is not a Unicode scalar"))?,
                );
            }
            _ => return Err(self.error(format!("unknown escape `\\{}`", c as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| self.error(format!("invalid number `{text}`")))?;
            if !x.is_finite() {
                return Err(self.error(format!("number `{text}` out of range")));
            }
            Ok(Json::Float(x))
        } else {
            match text.parse::<i64>() {
                Ok(n) => Ok(Json::Int(n)),
                // Integer overflow: fall back to the float reading rather
                // than reject a syntactically valid document.
                Err(_) => {
                    let x: f64 = text
                        .parse()
                        .map_err(|_| self.error(format!("invalid number `{text}`")))?;
                    Ok(Json::Float(x))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Float(0.5),
            Json::Float(-1e30),
            Json::Str(String::new()),
            Json::Str("hello \"world\"\n\t\\ \u{1F600} \u{7}".to_string()),
        ] {
            let compact = doc.compact();
            assert_eq!(Json::parse(&compact).unwrap(), doc, "compact {compact}");
            let pretty = doc.pretty();
            assert_eq!(Json::parse(&pretty).unwrap(), doc, "pretty {pretty}");
        }
    }

    #[test]
    fn int_and_float_stay_distinct() {
        assert_eq!(Json::parse("4").unwrap(), Json::Int(4));
        assert_eq!(Json::parse("4.0").unwrap(), Json::Float(4.0));
        assert_ne!(Json::Int(4), Json::Float(4.0));
        assert_eq!(Json::Float(4.0).compact(), "4.0");
        assert_eq!(Json::Int(4).compact(), "4");
    }

    #[test]
    fn nested_documents_round_trip() {
        let doc = Json::object([
            ("schema_version", Json::from(1u64)),
            ("empty_obj", Json::object(Vec::<(String, Json)>::new())),
            ("empty_arr", Json::Array(vec![])),
            (
                "matrix",
                Json::Array(vec![
                    Json::Array(vec![Json::Bool(true), Json::Bool(false)]),
                    Json::Array(vec![Json::Null, Json::Int(3)]),
                ]),
            ),
            ("nested", Json::object([("k", Json::from("v"))])),
        ]);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        let compact = doc.compact();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        assert!(!compact.contains('\n'));
    }

    #[test]
    fn key_order_is_preserved() {
        let doc = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = doc
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn accessors_extract_payloads() {
        let doc = Json::parse(r#"{"s": "x", "b": true, "n": 7, "f": 1.5, "a": [1], "nul": null}"#)
            .unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("n").and_then(Json::as_i64), Some(7));
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert!(doc.get("nul").unwrap().is_null());
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""Aé😀""#).unwrap(),
            Json::Str("Aé😀".to_string())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
        assert!(Json::parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn malformed_documents_are_errors_not_panics() {
        for bad in [
            "", "{", "}", "[1,", "[1 2]", "{\"a\"}", "{\"a\":}", "nul", "tru", "01x",
            "\"abc", "{\"a\":1,}x", "1 2", "--1", "1e", "\u{1F600}",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // Under the cap, fine.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn from_impls_cover_report_building() {
        assert_eq!(Json::from(3usize), Json::Int(3));
        assert_eq!(Json::from(3u64), Json::Int(3));
        assert_eq!(Json::from(u64::MAX), Json::Int(i64::MAX));
        assert_eq!(Json::from(Some("x")), Json::Str("x".to_string()));
        assert_eq!(Json::from(None::<&str>), Json::Null);
        assert_eq!(Json::from("x".to_string()), Json::Str("x".to_string()));
        assert_eq!(Json::array_of([1i64, 2], Json::from).compact(), "[1,2]");
    }

    #[test]
    fn strip_keys_removes_fields_at_every_depth() {
        let mut doc = Json::parse(
            r#"{"elapsed_ms": 1.5, "keep": {"elapsed_ms": 2, "x": [{"elapsed_ms": 3, "y": 1}]}}"#,
        )
        .unwrap();
        doc.strip_keys(&["elapsed_ms"]);
        assert_eq!(
            doc,
            Json::parse(r#"{"keep": {"x": [{"y": 1}]}}"#).unwrap()
        );
        // Stripping a key that never occurs is a no-op.
        let before = doc.clone();
        doc.strip_keys(&["missing"]);
        assert_eq!(doc, before);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
