//! A small text format for litmus tests.
//!
//! The CLI and the test corpus use this grammar:
//!
//! ```text
//! test SB "store buffering" {
//!   thread {
//!     write X = 1
//!     read Y -> r1
//!   }
//!   thread {
//!     write Y = 1
//!     read X -> r2
//!   }
//!   outcome { T1:r1 = 0; T2:r2 = 0 }
//! }
//! ```
//!
//! Instructions: `write <addr> = <expr>`, `read <addr> -> rN`, `fence`,
//! `fence.fK`, `op rN = <expr>`, `branch <expr>`. Addresses are location
//! names (`X`, `Y`, `Z`, `W`, `L9`) or register-indirect (`[r1]`).
//! Expressions support `+`, `-`, integers, registers and `&Loc` (the
//! address of a location). Statements are separated by newlines or `;`.

use std::error::Error;
use std::fmt;

use crate::execution::Outcome;
use crate::ids::{Loc, Reg, ThreadId, Value};
use crate::instr::{AddrExpr, FenceKind, Instruction, RegExpr};
use crate::litmus::LitmusTest;
use crate::program::{Program, Thread};

/// Error produced by the litmus parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// One-based line number of the error.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(i64),
    Str(String),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Eq,
    Arrow,
    Plus,
    Minus,
    Amp,
    Colon,
    Dot,
    /// Statement separator (newline or `;`).
    Sep,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Number(n) => write!(f, "`{n}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Sep => write!(f, "end of statement"),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                out.push((Tok::Sep, line - 1));
                chars.next();
            }
            ';' => {
                out.push((Tok::Sep, line));
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(ParseError::new(line, "unterminated string"))
                        }
                        Some(c) => s.push(c),
                    }
                }
                out.push((Tok::Str(s), line));
            }
            '{' => {
                out.push((Tok::LBrace, line));
                chars.next();
            }
            '}' => {
                out.push((Tok::RBrace, line));
                chars.next();
            }
            '[' => {
                out.push((Tok::LBracket, line));
                chars.next();
            }
            ']' => {
                out.push((Tok::RBracket, line));
                chars.next();
            }
            '=' => {
                out.push((Tok::Eq, line));
                chars.next();
            }
            '+' => {
                out.push((Tok::Plus, line));
                chars.next();
            }
            '&' => {
                out.push((Tok::Amp, line));
                chars.next();
            }
            ':' => {
                out.push((Tok::Colon, line));
                chars.next();
            }
            '.' => {
                out.push((Tok::Dot, line));
                chars.next();
            }
            ',' => {
                out.push((Tok::Sep, line));
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    out.push((Tok::Arrow, line));
                } else {
                    out.push((Tok::Minus, line));
                }
            }
            c if c.is_ascii_digit() => {
                let mut n = 0i64;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(i64::from(digit)))
                            .ok_or_else(|| ParseError::new(line, "integer overflow"))?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Number(n), line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), line));
            }
            other => {
                return Err(ParseError::new(line, format!("unexpected character `{other}`")))
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn skip_seps(&mut self) {
        while self.peek() == Some(&Tok::Sep) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        let line = self.line();
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(ParseError::new(line, format!("expected {want}, found {t}"))),
            None => Err(ParseError::new(line, format!("expected {want}, found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(ParseError::new(line, format!("expected identifier, found {t}"))),
            None => Err(ParseError::new(line, "expected identifier, found end of input")),
        }
    }

    fn reg(&mut self) -> Result<Reg, ParseError> {
        let line = self.line();
        let name = self.ident()?;
        parse_reg(&name).ok_or_else(|| ParseError::new(line, format!("`{name}` is not a register (expected rN)")))
    }
}

fn parse_reg(name: &str) -> Option<Reg> {
    let rest = name.strip_prefix('r')?;
    let n: u8 = rest.parse().ok()?;
    Some(Reg(n))
}

fn parse_loc(name: &str) -> Option<Loc> {
    match name {
        "X" => Some(Loc::X),
        "Y" => Some(Loc::Y),
        "Z" => Some(Loc::Z),
        "W" => Some(Loc::W),
        _ => {
            let rest = name.strip_prefix('L')?;
            let n: u8 = rest.parse().ok()?;
            Some(Loc(n))
        }
    }
}

fn parse_expr(p: &mut Parser) -> Result<RegExpr, ParseError> {
    let mut lhs = parse_term(p)?;
    loop {
        match p.peek() {
            Some(Tok::Plus) => {
                p.next();
                let rhs = parse_term(p)?;
                lhs = RegExpr::Add(Box::new(lhs), Box::new(rhs));
            }
            Some(Tok::Minus) => {
                p.next();
                let rhs = parse_term(p)?;
                lhs = RegExpr::Sub(Box::new(lhs), Box::new(rhs));
            }
            _ => return Ok(lhs),
        }
    }
}

fn parse_term(p: &mut Parser) -> Result<RegExpr, ParseError> {
    let line = p.line();
    match p.next() {
        Some(Tok::Number(n)) => Ok(RegExpr::Const(Value(n))),
        Some(Tok::Minus) => match p.next() {
            Some(Tok::Number(n)) => Ok(RegExpr::Const(Value(-n))),
            _ => Err(ParseError::new(line, "expected number after unary minus")),
        },
        Some(Tok::Amp) => {
            let name = p.ident()?;
            parse_loc(&name)
                .map(RegExpr::LocAddr)
                .ok_or_else(|| ParseError::new(line, format!("`{name}` is not a location")))
        }
        Some(Tok::Ident(name)) => parse_reg(&name)
            .map(RegExpr::Reg)
            .ok_or_else(|| ParseError::new(line, format!("`{name}` is not a register"))),
        Some(t) => Err(ParseError::new(line, format!("expected expression, found {t}"))),
        None => Err(ParseError::new(line, "expected expression, found end of input")),
    }
}

fn parse_addr(p: &mut Parser) -> Result<AddrExpr, ParseError> {
    let line = p.line();
    match p.peek() {
        Some(Tok::LBracket) => {
            p.next();
            let reg = p.reg()?;
            p.expect(&Tok::RBracket)?;
            Ok(AddrExpr::Reg(reg))
        }
        _ => {
            let name = p.ident()?;
            parse_loc(&name)
                .map(AddrExpr::Loc)
                .ok_or_else(|| ParseError::new(line, format!("`{name}` is not a location")))
        }
    }
}

fn parse_instruction(p: &mut Parser, keyword: &str) -> Result<Instruction, ParseError> {
    let line = p.line();
    match keyword {
        "write" => {
            let addr = parse_addr(p)?;
            p.expect(&Tok::Eq)?;
            let val = parse_expr(p)?;
            Ok(Instruction::Write { addr, val })
        }
        "read" => {
            let addr = parse_addr(p)?;
            p.expect(&Tok::Arrow)?;
            let dst = p.reg()?;
            Ok(Instruction::Read { addr, dst })
        }
        "fence" => {
            if p.peek() == Some(&Tok::Dot) {
                p.next();
                let name = p.ident()?;
                let flavour = name
                    .strip_prefix('f')
                    .and_then(|rest| rest.parse::<u8>().ok())
                    .ok_or_else(|| {
                        ParseError::new(line, format!("`{name}` is not a fence flavour (expected fN)"))
                    })?;
                Ok(Instruction::Fence(FenceKind::Special(flavour)))
            } else {
                Ok(Instruction::Fence(FenceKind::Full))
            }
        }
        "op" => {
            let dst = p.reg()?;
            p.expect(&Tok::Eq)?;
            let expr = parse_expr(p)?;
            Ok(Instruction::Op { dst, expr })
        }
        "branch" => {
            let cond = parse_expr(p)?;
            Ok(Instruction::Branch { cond })
        }
        other => Err(ParseError::new(
            line,
            format!("unknown instruction `{other}` (expected write/read/fence/op/branch)"),
        )),
    }
}

fn parse_thread(p: &mut Parser) -> Result<Thread, ParseError> {
    p.expect(&Tok::LBrace)?;
    let mut instructions = Vec::new();
    loop {
        p.skip_seps();
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next();
                return Ok(Thread { instructions });
            }
            Some(Tok::Ident(_)) => {
                let kw = p.ident()?;
                instructions.push(parse_instruction(p, &kw)?);
            }
            _ => {
                let line = p.line();
                return Err(ParseError::new(line, "expected instruction or `}` in thread body"));
            }
        }
    }
}

fn parse_outcome(p: &mut Parser) -> Result<Outcome, ParseError> {
    p.expect(&Tok::LBrace)?;
    let mut outcome = Outcome::new();
    loop {
        p.skip_seps();
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next();
                return Ok(outcome);
            }
            _ => {
                let line = p.line();
                let tname = p.ident()?;
                let thread = tname
                    .strip_prefix('T')
                    .and_then(|rest| rest.parse::<u8>().ok())
                    .filter(|n| *n >= 1)
                    .map(|n| ThreadId(n - 1))
                    .ok_or_else(|| {
                        ParseError::new(line, format!("`{tname}` is not a thread (expected TN)"))
                    })?;
                p.expect(&Tok::Colon)?;
                let reg = p.reg()?;
                p.expect(&Tok::Eq)?;
                let value = match p.next() {
                    Some(Tok::Number(n)) => Value(n),
                    Some(Tok::Minus) => match p.next() {
                        Some(Tok::Number(n)) => Value(-n),
                        _ => return Err(ParseError::new(line, "expected number")),
                    },
                    _ => return Err(ParseError::new(line, "expected outcome value")),
                };
                outcome = outcome.constrain(thread, reg, value);
            }
        }
    }
}

fn parse_test(p: &mut Parser) -> Result<LitmusTest, ParseError> {
    let header_line = p.line();
    let kw = p.ident()?;
    if kw != "test" {
        return Err(ParseError::new(header_line, format!("expected `test`, found `{kw}`")));
    }
    // Test names are identifiers, or quoted strings for generated names
    // like `c1[rw-adj-diff]`.
    let name = match p.peek() {
        Some(Tok::Str(_)) => match p.next() {
            Some(Tok::Str(s)) => s,
            _ => unreachable!("peeked a string"),
        },
        _ => p.ident()?,
    };
    let description = if let Some(Tok::Str(_)) = p.peek() {
        match p.next() {
            Some(Tok::Str(s)) => Some(s),
            _ => unreachable!("peeked a string"),
        }
    } else {
        None
    };
    p.expect(&Tok::LBrace)?;
    let mut threads = Vec::new();
    let mut outcome = None;
    loop {
        p.skip_seps();
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next();
                break;
            }
            Some(Tok::Ident(id)) if id == "thread" => {
                p.next();
                threads.push(parse_thread(p)?);
            }
            Some(Tok::Ident(id)) if id == "outcome" => {
                p.next();
                if outcome.is_some() {
                    return Err(ParseError::new(p.line(), "duplicate outcome block"));
                }
                outcome = Some(parse_outcome(p)?);
            }
            _ => {
                return Err(ParseError::new(
                    p.line(),
                    "expected `thread`, `outcome` or `}` in test body",
                ))
            }
        }
    }
    let program = Program { threads };
    let outcome = outcome.unwrap_or_default();
    let test = LitmusTest::new(name, program, outcome)
        .map_err(|e| ParseError::new(header_line, e.to_string()))?;
    Ok(match description {
        Some(d) => test.with_description(d),
        None => test,
    })
}

/// Parses a single litmus test.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors or if the test fails semantic
/// validation (see [`LitmusTest::new`]).
pub fn parse_litmus(text: &str) -> Result<LitmusTest, ParseError> {
    let mut tests = parse_litmus_file(text)?;
    match tests.len() {
        1 => Ok(tests.remove(0)),
        n => Err(ParseError::new(1, format!("expected exactly one test, found {n}"))),
    }
}

/// Parses a file containing any number of litmus tests.
///
/// # Errors
///
/// Returns [`ParseError`] as for [`parse_litmus`].
pub fn parse_litmus_file(text: &str) -> Result<Vec<LitmusTest>, ParseError> {
    let toks = tokenize(text)?;
    let mut p = Parser { toks, pos: 0 };
    let mut tests = Vec::new();
    loop {
        p.skip_seps();
        if p.peek().is_none() {
            return Ok(tests);
        }
        tests.push(parse_test(&mut p)?);
    }
}

/// Renders a test in the grammar accepted by [`parse_litmus`] (round-trip).
#[must_use]
pub fn to_source(test: &LitmusTest) -> String {
    let mut out = String::new();
    let plain = !test.name().is_empty()
        && test
            .name()
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_')
        && test
            .name()
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_');
    if plain {
        out.push_str(&format!("test {}", test.name()));
    } else {
        out.push_str(&format!("test \"{}\"", test.name()));
    }
    if !test.description().is_empty() {
        out.push_str(&format!(" \"{}\"", test.description()));
    }
    out.push_str(" {\n");
    for thread in &test.program().threads {
        out.push_str("  thread {\n");
        for instr in &thread.instructions {
            out.push_str(&format!("    {instr}\n"));
        }
        out.push_str("  }\n");
    }
    out.push_str("  outcome { ");
    let parts: Vec<String> = test
        .outcome()
        .constraints()
        .iter()
        .map(|(t, r, v)| format!("{t}:{r} = {v}"))
        .collect();
    out.push_str(&parts.join("; "));
    out.push_str(" }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SB: &str = r#"
test SB "store buffering" {
  thread {
    write X = 1
    read Y -> r1
  }
  thread {
    write Y = 1
    read X -> r2
  }
  outcome { T1:r1 = 0; T2:r2 = 0 }
}
"#;

    #[test]
    fn parses_store_buffering() {
        let test = parse_litmus(SB).unwrap();
        assert_eq!(test.name(), "SB");
        assert_eq!(test.description(), "store buffering");
        assert_eq!(test.program().threads.len(), 2);
        assert_eq!(test.program().access_count(), 4);
        assert_eq!(test.outcome().len(), 2);
    }

    #[test]
    fn parses_dependencies_and_indirection() {
        let src = r#"
test L4ish {
  thread {
    read Y -> r1
    op r2 = r1 - r1 + &X
    read [r2] -> r3
    branch r3
    fence.f2
  }
  outcome { T1:r1 = 0; T1:r3 = 0 }
}
"#;
        let test = parse_litmus(src).unwrap();
        let instrs = &test.program().threads[0].instructions;
        assert_eq!(instrs.len(), 5);
        assert!(matches!(instrs[2], Instruction::Read { addr: AddrExpr::Reg(Reg(2)), .. }));
        assert!(matches!(instrs[4], Instruction::Fence(FenceKind::Special(2))));
    }

    #[test]
    fn round_trips_through_to_source() {
        let test = parse_litmus(SB).unwrap();
        let src = to_source(&test);
        let reparsed = parse_litmus(&src).unwrap();
        assert_eq!(&reparsed, &test);
    }

    #[test]
    fn comments_and_semicolons_are_accepted() {
        let src = "test T { # header comment\n thread { write X = 1; read Y -> r1 }\n outcome { T1:r1 = 0 } }";
        let test = parse_litmus(src).unwrap();
        assert_eq!(test.program().access_count(), 2);
    }

    #[test]
    fn multiple_tests_in_one_file() {
        let two = format!("{SB}\n{}", SB.replace("SB", "SB2"));
        let tests = parse_litmus_file(&two).unwrap();
        assert_eq!(tests.len(), 2);
        assert!(parse_litmus(&two).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let src = "test Bad {\n  thread {\n    wibble X = 1\n  }\n}";
        let err = parse_litmus(src).unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("wibble"));
    }

    #[test]
    fn semantic_errors_surface_as_parse_errors() {
        // Read without an outcome constraint.
        let src = "test Bad {\n  thread { read X -> r1 }\n  outcome { }\n}";
        let err = parse_litmus(src).unwrap_err();
        assert!(err.to_string().contains("not constrained"));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_litmus("test A \"oops {\n}").is_err());
    }

    #[test]
    fn negative_values_parse() {
        let src = "test Neg {\n  thread { write X = -3\n read X -> r1 }\n  outcome { T1:r1 = -3 }\n}";
        let test = parse_litmus(src).unwrap();
        assert_eq!(test.outcome().constraints()[0].2, Value(-3));
    }
}
