//! Error types for litmus program construction and execution.

use std::error::Error;
use std::fmt;

use crate::ids::{Reg, ThreadId, Value};

/// Errors arising while building programs or deriving executions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// A register was used before being defined in its thread.
    UndefinedRegister {
        /// Thread where the use occurs.
        thread: ThreadId,
        /// The register.
        reg: Reg,
    },
    /// A register was defined twice (programs are single-assignment).
    RegisterRedefined {
        /// Thread where the redefinition occurs.
        thread: ThreadId,
        /// The register.
        reg: Reg,
    },
    /// The outcome does not constrain a read's destination register.
    UnconstrainedRead {
        /// Thread of the read.
        thread: ThreadId,
        /// Destination register of the unconstrained read.
        reg: Reg,
    },
    /// The outcome constrains a register that no instruction defines.
    ConstraintOnUnknownRegister {
        /// Thread named by the constraint.
        thread: ThreadId,
        /// The register.
        reg: Reg,
    },
    /// The outcome constrains a register defined by an `Op`; the implied
    /// read values would be ambiguous, so only read destinations (whose
    /// value *is* the read's value) may be constrained.
    ConstraintOnComputedRegister {
        /// Thread named by the constraint.
        thread: ThreadId,
        /// The register.
        reg: Reg,
    },
    /// The outcome value of a computed register contradicts the values
    /// implied by the constrained reads.
    InconsistentConstraint {
        /// Thread named by the constraint.
        thread: ThreadId,
        /// The register.
        reg: Reg,
        /// Value the program computes.
        computed: Value,
        /// Value the outcome demanded.
        demanded: Value,
    },
    /// A register-indirect access resolved to a value that is not any
    /// location's address.
    InvalidAddress {
        /// Thread of the faulting access.
        thread: ThreadId,
        /// The resolved (invalid) address value.
        value: Value,
    },
    /// An outcome mentioned a thread the program does not have.
    UnknownThread {
        /// The thread.
        thread: ThreadId,
    },
    /// The same `(thread, register)` was constrained twice.
    DuplicateConstraint {
        /// Thread named by the constraint.
        thread: ThreadId,
        /// The register.
        reg: Reg,
    },
    /// A [`crate::skeleton::TestSkeleton`] is internally inconsistent and
    /// cannot decode to a litmus test.
    MalformedSkeleton {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UndefinedRegister { thread, reg } => {
                write!(f, "{thread}: register {reg} used before definition")
            }
            CoreError::RegisterRedefined { thread, reg } => {
                write!(f, "{thread}: register {reg} defined more than once")
            }
            CoreError::UnconstrainedRead { thread, reg } => {
                write!(f, "{thread}: read destination {reg} is not constrained by the outcome")
            }
            CoreError::ConstraintOnUnknownRegister { thread, reg } => {
                write!(f, "{thread}: outcome constrains {reg}, which is never defined")
            }
            CoreError::ConstraintOnComputedRegister { thread, reg } => {
                write!(f, "{thread}: outcome constrains computed register {reg}")
            }
            CoreError::InconsistentConstraint {
                thread,
                reg,
                computed,
                demanded,
            } => write!(
                f,
                "{thread}: register {reg} computes {computed} but outcome demands {demanded}"
            ),
            CoreError::InvalidAddress { thread, value } => {
                write!(f, "{thread}: value {value} is not a location address")
            }
            CoreError::UnknownThread { thread } => {
                write!(f, "outcome names {thread}, which does not exist")
            }
            CoreError::DuplicateConstraint { thread, reg } => {
                write!(f, "outcome constrains {thread}:{reg} twice")
            }
            CoreError::MalformedSkeleton { reason } => {
                write!(f, "malformed test skeleton: {reason}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = CoreError::UndefinedRegister {
            thread: ThreadId(0),
            reg: Reg(1),
        };
        assert_eq!(e.to_string(), "T1: register r1 used before definition");
        let e = CoreError::InvalidAddress {
            thread: ThreadId(1),
            value: Value(17),
        };
        assert!(e.to_string().contains("17"));
    }
}
