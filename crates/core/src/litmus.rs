//! Litmus tests: a program plus a demanded outcome.

use std::fmt;

use crate::error::CoreError;
use crate::execution::{Execution, Outcome};
use crate::ids::ThreadId;
use crate::program::Program;

/// A litmus test asks: *can this program end with these register values?*
///
/// Different memory models answer differently, which is exactly how the
/// paper contrasts them: test `P` with execution `α_P` distinguishes `M1`
/// from `M2` when `α_P ∈ M2 \ M1`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LitmusTest {
    name: String,
    description: String,
    program: Program,
    outcome: Outcome,
}

impl LitmusTest {
    /// Creates a test, eagerly checking that the candidate execution is
    /// derivable (program valid, outcome complete and consistent).
    ///
    /// # Errors
    ///
    /// Propagates [`Execution::from_program`] failures.
    pub fn new(
        name: impl Into<String>,
        program: Program,
        outcome: Outcome,
    ) -> Result<Self, CoreError> {
        Execution::from_program(&program, &outcome)?;
        Ok(LitmusTest {
            name: name.into(),
            description: String::new(),
            program,
            outcome,
        })
    }

    /// Attaches a human-readable description (shown by the CLI and docs).
    #[must_use]
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Returns a copy under a different name (used when the same shape has
    /// both a paper name and a community name, e.g. `L7` vs `SB`).
    #[must_use]
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Test name (e.g. `L5`, `SB`, `case1-rw-dep-diff`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Optional description.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The demanded outcome.
    #[must_use]
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    /// The candidate execution (the paper's `α_P`).
    ///
    /// Construction was validated in [`LitmusTest::new`], so this cannot
    /// fail.
    #[must_use]
    pub fn execution(&self) -> Execution {
        Execution::from_program(&self.program, &self.outcome)
            .expect("validated at construction")
    }
}

impl fmt::Display for LitmusTest {
    /// Renders the paper's side-by-side table format (Figure 3).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Test {}", self.name)?;
        let columns: Vec<Vec<String>> = self
            .program
            .threads
            .iter()
            .map(|t| t.instructions.iter().map(ToString::to_string).collect())
            .collect();
        let widths: Vec<usize> = columns
            .iter()
            .enumerate()
            .map(|(i, col)| {
                col.iter()
                    .map(String::len)
                    .chain(std::iter::once(ThreadId(i as u8).to_string().len()))
                    .max()
                    .unwrap_or(2)
            })
            .collect();
        let header: Vec<String> = (0..columns.len())
            .map(|i| format!("{:w$}", ThreadId(i as u8).to_string(), w = widths[i]))
            .collect();
        writeln!(f, "{}", header.join(" | "))?;
        let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
        for r in 0..rows {
            let cells: Vec<String> = columns
                .iter()
                .enumerate()
                .map(|(i, col)| {
                    format!(
                        "{:w$}",
                        col.get(r).map(String::as_str).unwrap_or(""),
                        w = widths[i]
                    )
                })
                .collect();
            writeln!(f, "{}", cells.join(" | ").trim_end())?;
        }
        writeln!(f, "Outcome: {}", self.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Loc, Reg, Value};

    fn sb() -> LitmusTest {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(ThreadId(0), Reg(1), Value(0))
            .constrain(ThreadId(1), Reg(2), Value(0));
        LitmusTest::new("SB", program, outcome).unwrap()
    }

    #[test]
    fn construction_validates_execution() {
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        assert!(LitmusTest::new("bad", program, Outcome::new()).is_err());
    }

    #[test]
    fn execution_is_reproducible() {
        let test = sb();
        assert_eq!(test.execution(), test.execution());
        assert_eq!(test.execution().events().len(), 4);
    }

    #[test]
    fn display_renders_side_by_side() {
        let rendered = sb().to_string();
        assert!(rendered.starts_with("Test SB\n"));
        assert!(rendered.contains("T1"));
        assert!(rendered.contains("T2"));
        assert!(rendered.contains("write X = 1"));
        assert!(rendered.contains("Outcome: T1:r1=0; T2:r2=0"));
    }

    #[test]
    fn description_is_attached() {
        let test = sb().with_description("store buffering");
        assert_eq!(test.description(), "store buffering");
        assert_eq!(test.name(), "SB");
    }
}
