//! # mcm-query
//!
//! The unified query API of the workspace — the library face of the
//! paper's §4.1 tool, designed so a CLI, a server, a batch harness or a
//! notebook all drive the same machinery and get structured results
//! back.
//!
//! A query composes four declarative legs:
//!
//! * a [`ModelSpec`] — which models (`figure4` | `90` | `named` | an
//!   explicit list);
//! * a [`TestSource`] — which tests (template suite | streamed
//!   enumeration | catalog | a `.litmus` file);
//! * a [`CheckerKind`] — which admissibility backend;
//! * an [`EngineConfig`] — how hard to drive the sweep engine.
//!
//! [`Query`] offers one constructor per question ([`Query::sweep`],
//! [`Query::compare`], [`Query::distinguish`], [`Query::synth`],
//! [`Query::check`], plus [`Query::suite`] / [`Query::catalog`] /
//! [`Query::parse_file`] / [`Query::figures`]); running a query executes
//! through the existing batched sweep / streaming / CEGIS cores and
//! returns a **typed report** ([`SweepReport`], [`CompareReport`],
//! [`DistinguishReport`], [`SynthReport`], [`CheckReport`], ...). Every
//! report implements [`Render`]: human-readable `text`, a
//! schema-versioned `json` document (emitted and re-parseable by
//! [`mcm_core::json`], no external dependencies), and `csv` / `dot`
//! where the report has a tabular or graph view.
//!
//! ## Example
//!
//! Sweep two models over the built-in catalog and read the result as
//! data — or serialize it:
//!
//! ```
//! use mcm_query::{Format, ModelSpec, Query, Render, TestSource};
//!
//! let report = Query::sweep()
//!     .models(ModelSpec::List(vec!["SC".into(), "TSO".into()]))
//!     .tests(TestSource::Catalog)
//!     .run()
//!     .unwrap();
//!
//! // Typed access ...
//! assert_eq!(report.exploration.models.len(), 2);
//! assert_eq!(report.lattice.classes.len(), 2);
//!
//! // ... or machine-readable output that round-trips through the
//! // in-tree parser.
//! let json = report.render(Format::Json).unwrap();
//! let doc = mcm_core::json::Json::parse(&json).unwrap();
//! assert_eq!(doc.get("kind").and_then(|k| k.as_str()), Some("sweep"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod query;
mod render;
pub mod reports;
pub mod resolve;
mod source;
pub mod wire;

pub use error::QueryError;
pub use query::{
    AnalyzeQuery, CheckQuery, CompareQuery, DistinguishQuery, Query, SuiteQuery, SweepQuery,
    SynthQuery,
};
pub use render::{Format, Render, SCHEMA_VERSION};
pub use reports::{
    AnalyzeFinding, AnalyzeModelEntry, AnalyzePair, AnalyzeReport, CacheSummary, CatalogReport,
    CheckEntry, CheckReport, CheckpointSummary, CompareReport, CompareWitness, CountsFigure,
    DistinguishReport, Fig1Figure, Fig4Figure, FigureSelection, FiguresReport, ParseReport,
    StoreSummary, StreamSummary, CheckerTiming, LatencySummary, SuiteReport, SweepReport,
    SynthMatrix, SynthPair, SynthReport, Timings, TimingsCapture, WarmSummary,
    TIMINGS_SCHEMA_VERSION,
};
pub use resolve::{model_set, models_use_dependencies, ModelSpec};
pub use source::TestSource;

// The types a query is built from, re-exported so callers (the CLI
// included) need only this crate.
pub use mcm_axiomatic::CheckerKind;
pub use mcm_core::json::Json;
pub use mcm_explore::EngineConfig;
pub use mcm_gen::{Shard, StreamBounds};
pub use mcm_synth::SynthBounds;
