//! The [`Query`] constructors and per-kind builders.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use mcm_axiomatic::{explain, Checker, CheckerKind, ExplicitChecker};
use mcm_explore::dot::{render_dot, DotOptions};
use mcm_explore::{
    distinguish, paper, EngineConfig, Exploration, Lattice, StreamControl, VerdictCache,
};
use mcm_gen::{count, naive, template_suite};
use mcm_models::catalog;
use mcm_store::{CheckpointFile, DiskCache, SweepMeta};
use mcm_synth::SynthBounds;

use crate::error::QueryError;
use crate::reports::{
    AnalyzeFinding, AnalyzeModelEntry, AnalyzePair, AnalyzeReport, CacheSummary, CatalogReport,
    CheckEntry, CheckReport, CheckpointSummary, CompareReport, CompareWitness, CountsFigure,
    DistinguishReport, Fig1Figure, Fig4Figure, FigureSelection, FiguresReport, ParseReport,
    StoreSummary, StreamSummary, SuiteReport, SweepReport, SynthMatrix, SynthPair, SynthReport,
    TimingsCapture, WarmSummary,
};
use crate::resolve::{self, ModelSpec};
use crate::source::TestSource;

/// The entry point of the query API: one constructor per question the
/// tool answers. Each returns a builder whose `run()` produces the
/// matching typed report.
///
/// ```
/// use mcm_query::{ModelSpec, Query, Render, TestSource};
///
/// let report = Query::sweep()
///     .models(ModelSpec::List(vec!["SC".into(), "TSO".into()]))
///     .tests(TestSource::Catalog)
///     .run()
///     .unwrap();
/// assert_eq!(report.exploration.models.len(), 2);
/// assert!(report.json().get("verdicts").is_some());
/// ```
pub struct Query;

impl Query {
    /// A models × tests sweep: verdict matrix, lattice, equivalence data
    /// and (for materialized suites) a minimum distinguishing set.
    #[must_use]
    pub fn sweep() -> SweepQuery {
        SweepQuery {
            models: ModelSpec::Figure4,
            source: TestSource::TemplateSuite { with_deps: false },
            checker: CheckerKind::Explicit,
            config: EngineConfig::default(),
            cache: false,
            shared: None,
            store: None,
            checkpoint: None,
            resume: None,
            warm_figure4_demo: false,
        }
    }

    /// Static semantic analysis of a model set: the strength lattice,
    /// equivalent pairs, minimized normal forms and lint findings — with
    /// zero litmus tests executed.
    #[must_use]
    pub fn analyze() -> AnalyzeQuery {
        AnalyzeQuery {
            models: ModelSpec::Full90,
            tests: None,
        }
    }

    /// The relation between two models over the complete comparison
    /// suite, with every separating test.
    #[must_use]
    pub fn compare(left: impl Into<String>, right: impl Into<String>) -> CompareQuery {
        CompareQuery {
            left: left.into(),
            right: right.into(),
            with_deps: true,
        }
    }

    /// A SAT-certified minimum distinguishing test set for a model space.
    #[must_use]
    pub fn distinguish() -> DistinguishQuery {
        DistinguishQuery {
            models: ModelSpec::Full90,
            with_deps: true,
            checker: CheckerKind::Explicit,
            config: EngineConfig::default(),
            cache: false,
            shared: None,
        }
    }

    /// CEGIS synthesis of a minimal distinguishing test for one pair.
    #[must_use]
    pub fn synth(left: impl Into<String>, right: impl Into<String>) -> SynthQuery {
        SynthQuery {
            mode: SynthMode::Pair {
                left: left.into(),
                right: right.into(),
            },
            bounds: SynthBounds::default(),
            max_size: None,
            verbose: false,
        }
    }

    /// CEGIS synthesis of the whole pairwise minimal-length matrix.
    #[must_use]
    pub fn synth_matrix(models: ModelSpec) -> SynthQuery {
        SynthQuery {
            mode: SynthMode::Matrix(models),
            bounds: SynthBounds::default(),
            max_size: None,
            verbose: false,
        }
    }

    /// Per-test admissibility of a litmus source under one model.
    #[must_use]
    pub fn check(model: impl Into<String>, source: TestSource) -> CheckQuery {
        CheckQuery {
            model: model.into(),
            source,
            checker: CheckerKind::Explicit,
            witness: false,
        }
    }

    /// The Theorem 1 template suite and its Corollary 1 bound.
    #[must_use]
    pub fn suite(with_deps: bool) -> SuiteQuery {
        SuiteQuery {
            with_deps,
            full: false,
        }
    }

    /// The built-in test catalog, grouped by provenance.
    #[must_use]
    pub fn catalog() -> CatalogReport {
        CatalogReport {
            sections: catalog::sections(),
        }
    }

    /// Validates a `.litmus` file and reports its tests.
    ///
    /// # Errors
    ///
    /// [`QueryError::Io`] when the file cannot be read,
    /// [`QueryError::Parse`] when its contents do not parse.
    pub fn parse_file(path: impl Into<std::path::PathBuf>) -> Result<ParseReport, QueryError> {
        let path = path.into();
        let source = path.display().to_string();
        let tests = TestSource::File(path).load()?;
        Ok(ParseReport { source, tests })
    }

    /// Regenerates the requested paper figures as data.
    #[must_use]
    pub fn figures(selection: FigureSelection) -> FiguresReport {
        figures_report(selection)
    }
}

/// Builder for [`Query::sweep`].
#[derive(Clone, Debug)]
pub struct SweepQuery {
    models: ModelSpec,
    source: TestSource,
    checker: CheckerKind,
    config: EngineConfig,
    cache: bool,
    shared: Option<Arc<VerdictCache>>,
    store: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    resume: Option<PathBuf>,
    warm_figure4_demo: bool,
}

impl SweepQuery {
    /// The model space to sweep.
    #[must_use]
    pub fn models(mut self, models: ModelSpec) -> Self {
        self.models = models;
        self
    }

    /// Where the tests come from (materialized or streamed).
    #[must_use]
    pub fn tests(mut self, source: TestSource) -> Self {
        self.source = source;
        self
    }

    /// The checker backend (built test-major via
    /// [`CheckerKind::build_batch`]).
    #[must_use]
    pub fn checker(mut self, checker: CheckerKind) -> Self {
        self.checker = checker;
        self
    }

    /// Engine tuning: canonicalization, worker count, batch sizes.
    #[must_use]
    pub fn engine(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Memoize verdicts in a fresh [`VerdictCache`] and report its
    /// totals.
    #[must_use]
    pub fn cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Memoize verdicts in an **externally owned** cache instead of a
    /// fresh one — the cross-request sharing hook the serve layer uses so
    /// one process-wide warm cache accelerates every sweep. Takes
    /// precedence over [`SweepQuery::cache`]; the reported cache summary
    /// then carries the shared cache's process-wide totals.
    #[must_use]
    pub fn cache_with(mut self, cache: Arc<VerdictCache>) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Back the verdict cache with the append-only log at `path`
    /// ([`mcm_store::DiskCache`]): known verdicts hydrate from disk
    /// before the sweep, fresh ones are written through batch by batch.
    /// Takes precedence over [`SweepQuery::cache`] and
    /// [`SweepQuery::cache_with`] as the sweep's cache.
    #[must_use]
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(path.into());
        self
    }

    /// For streamed sweeps: save a resumable checkpoint to `path` after
    /// every processed chunk (atomic rename-over, so a kill mid-save
    /// keeps the previous one). Ignored for materialized sources.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// For streamed sweeps: resume from the checkpoint at `path` instead
    /// of starting cold. A missing file is a cold start (first run of a
    /// `--checkpoint F --resume F` loop); a checkpoint taken over a
    /// different sweep (models, bounds, shard, chunking) is rejected.
    #[must_use]
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// After a cached full-space template sweep, re-sweep the Figure 4
    /// subspace to demonstrate cross-sweep memoization (ignored unless
    /// both the cache and the with-deps template suite are in play).
    #[must_use]
    pub fn warm_figure4_demo(mut self, demo: bool) -> Self {
        self.warm_figure4_demo = demo;
        self
    }

    /// Runs the sweep.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] for unresolvable models;
    /// [`QueryError::Io`] / [`QueryError::Parse`] for file-backed test
    /// sources.
    pub fn run(self) -> Result<SweepReport, QueryError> {
        let models = self.models.resolve()?;
        // A disk-backed store supplies the cache when requested; it
        // outranks the shared and owned caches so its write-through sink
        // sees every fresh verdict of the sweep.
        let disk = match &self.store {
            Some(path) => Some(DiskCache::open(path).map_err(|e| QueryError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?),
            None => None,
        };
        let owned =
            (disk.is_none() && self.shared.is_none() && self.cache).then(VerdictCache::new);
        let cache: Option<&VerdictCache> = disk
            .as_ref()
            .map(|d| d.cache().as_ref())
            .or(self.shared.as_deref())
            .or(owned.as_ref());
        let checker = self.checker;
        if let TestSource::Stream {
            bounds,
            limit,
            shard,
        } = &self.source
        {
            let raw_space = mcm_gen::stream::try_count_raw(bounds, 20_000_000);
            let meta = SweepMeta {
                bounds: *bounds,
                limit: limit.map(|l| l as u64),
                shard: *shard,
                canonicalize: self.config.canonicalize,
                stream_chunk: self.config.stream_chunk as u64,
            };
            let resume_state = match &self.resume {
                None => None,
                Some(path) => {
                    let loaded = CheckpointFile::load(path).map_err(|e| QueryError::Io {
                        path: path.display().to_string(),
                        message: e.to_string(),
                    })?;
                    match loaded {
                        // Cold start: the checkpoint was never written
                        // (first run of a `--checkpoint F --resume F` loop).
                        None => None,
                        Some(ckpt) if ckpt.meta != meta => {
                            return Err(QueryError::InvalidSpec(format!(
                                "checkpoint {} was taken over a different sweep \
                                 (bounds, limit, shard or engine chunking differ)",
                                path.display()
                            )));
                        }
                        Some(ckpt) => Some(ckpt.state),
                    }
                }
            };
            let resumed_at = resume_state.as_ref().map(|s| s.tests_streamed);
            let saves = Cell::new(0u64);
            let save_errors = Cell::new(0u64);
            let mut control = StreamControl {
                on_checkpoint: None,
                resume: resume_state,
            };
            if let Some(path) = &self.checkpoint {
                control.on_checkpoint = Some(Box::new(|state| {
                    let file = CheckpointFile {
                        meta,
                        state: state.clone(),
                    };
                    match file.save(path) {
                        Ok(()) => saves.set(saves.get() + 1),
                        Err(_) => save_errors.set(save_errors.get() + 1),
                    }
                    true
                }));
            }
            let timings = TimingsCapture::start();
            let start = Instant::now();
            let stream = match shard {
                Some(shard) => mcm_gen::stream::leaders_sharded(bounds, *shard),
                None => mcm_gen::stream::leaders(bounds),
            }
            .take(limit.unwrap_or(usize::MAX));
            let (exploration, stats) = Exploration::run_engine_streaming_with(
                models,
                stream,
                || checker.build_batch(),
                &self.config,
                cache,
                control,
            )
            .map_err(|e| QueryError::InvalidSpec(e.to_string()))?;
            let elapsed = start.elapsed();
            let timings = timings.finish();
            let lattice = Lattice::build(&exploration);
            let equivalent_pairs = named_pairs(&exploration);
            return Ok(SweepReport {
                exploration,
                stats,
                lattice,
                equivalent_pairs,
                minimal_set: None,
                nine_test_indices: Vec::new(),
                nine_tests_sufficient: None,
                cache: cache.map(cache_summary),
                store: disk.as_ref().map(store_summary),
                // Reported for a saving run AND a resume-only run — the
                // latter still needs its cursor surfaced.
                checkpoint: self
                    .checkpoint
                    .as_ref()
                    .or(self.resume.as_ref())
                    .map(|path| CheckpointSummary {
                        path: path.display().to_string(),
                        saves: saves.get(),
                        save_errors: save_errors.get(),
                        resumed_at,
                    }),
                warm: None,
                stream: Some(StreamSummary {
                    bounds: *bounds,
                    limit: *limit,
                    shard: *shard,
                    raw_space,
                }),
                timings,
                elapsed,
            });
        }
        let tests = self.source.load()?;
        let timings = TimingsCapture::start();
        let start = Instant::now();
        let (exploration, stats) = Exploration::run_engine(
            models,
            tests,
            || checker.build_batch(),
            &self.config,
            cache,
        );
        let space = paper::report_from(exploration);
        let elapsed = start.elapsed();
        let timings = timings.finish();
        // The warm re-sweep demo is only honest after a sweep that covered
        // the full 90-model digit space and its dependency-bearing suite —
        // anything smaller leaves the Figure 4 subspace cold.
        let warm = match (cache, self.warm_figure4_demo, &self.source) {
            (Some(cache), true, TestSource::TemplateSuite { with_deps: true }) => {
                let warm_start = Instant::now();
                let (_, warm_stats) = Exploration::run_engine(
                    paper::digit_space_models(false),
                    paper::comparison_tests(false),
                    || checker.build_batch(),
                    &self.config,
                    Some(cache),
                );
                Some(WarmSummary {
                    elapsed: warm_start.elapsed(),
                    cache_hits: warm_stats.cache_hits,
                    checker_calls: warm_stats.checker_calls,
                })
            }
            _ => None,
        };
        Ok(SweepReport {
            exploration: space.exploration,
            stats,
            lattice: space.lattice,
            equivalent_pairs: space.equivalent_pairs,
            minimal_set: Some(space.minimal_set),
            nine_test_indices: space.nine_test_indices,
            nine_tests_sufficient: Some(space.nine_tests_sufficient),
            cache: cache.map(cache_summary),
            store: disk.as_ref().map(store_summary),
            checkpoint: None,
            warm,
            stream: None,
            timings,
            elapsed,
        })
    }
}

/// Builder for [`Query::analyze`].
#[derive(Clone, Debug)]
pub struct AnalyzeQuery {
    models: ModelSpec,
    tests: Option<TestSource>,
}

impl AnalyzeQuery {
    /// The model set to analyze.
    #[must_use]
    pub fn models(mut self, models: ModelSpec) -> Self {
        self.models = models;
        self
    }

    /// Also lint the tests of a (materialized) source: never-read writes,
    /// non-canonical form.
    #[must_use]
    pub fn tests(mut self, source: TestSource) -> Self {
        self.tests = Some(source);
        self
    }

    /// Runs the analysis. Purely static: no checker is built, no litmus
    /// test is executed.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] for unresolvable models or a streamed
    /// test source; [`QueryError::Io`] / [`QueryError::Parse`] for
    /// file-backed test sources.
    pub fn run(self) -> Result<AnalyzeReport, QueryError> {
        let models = self.models.resolve()?;
        let start = Instant::now();
        let analysis = mcm_analyze::StrengthAnalysis::build(&models);

        let mut findings: Vec<AnalyzeFinding> = Vec::new();
        let mut absorb = |batch: Vec<mcm_analyze::Finding>| {
            findings.extend(batch.into_iter().map(|f| AnalyzeFinding {
                target: f.target,
                code: f.code.to_string(),
                message: f.message,
            }));
        };
        absorb(mcm_analyze::lint_models(&models));
        for model in &models {
            absorb(mcm_analyze::lint_formula(model.name(), model.formula()));
        }
        let mut tests_linted = 0;
        if let Some(source) = &self.tests {
            let tests = source.load()?;
            tests_linted = tests.len();
            for test in &tests {
                absorb(mcm_analyze::lint_test(test));
            }
        }

        let entries: Vec<AnalyzeModelEntry> = analysis
            .models
            .iter()
            .enumerate()
            .map(|(i, m)| AnalyzeModelEntry {
                name: m.name.clone(),
                formula: m.formula.to_string(),
                minimized: m.minimized.to_string(),
                fingerprint: format!("{:016x}", m.key.fingerprint()),
                class: analysis.class_of(i),
                elided: m.elided,
            })
            .collect();
        let equivalent_pairs = analysis
            .equivalent_pairs()
            .into_iter()
            .map(|(i, j, how)| AnalyzePair {
                left: analysis.models[i].name.clone(),
                right: analysis.models[j].name.clone(),
                how: how.to_string(),
            })
            .collect();
        Ok(AnalyzeReport {
            models: entries,
            classes: analysis.classes.clone(),
            edges: analysis.edges.clone(),
            minimal_classes: analysis.minimal_classes(),
            maximal_classes: analysis.maximal_classes(),
            equivalent_pairs,
            findings,
            tests_linted,
            elapsed: start.elapsed(),
        })
    }
}

/// Builder for [`Query::compare`].
#[derive(Clone, Debug)]
pub struct CompareQuery {
    left: String,
    right: String,
    with_deps: bool,
}

impl CompareQuery {
    /// Include the dependency-idiom templates in the comparison suite.
    #[must_use]
    pub fn with_deps(mut self, with_deps: bool) -> Self {
        self.with_deps = with_deps;
        self
    }

    /// Runs the comparison.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] for unknown model names.
    pub fn run(self) -> Result<CompareReport, QueryError> {
        let left = resolve::model(&self.left)?;
        let right = resolve::model(&self.right)?;
        let start = Instant::now();
        let expl = Exploration::run(
            vec![left, right],
            paper::comparison_tests(self.with_deps),
            &ExplicitChecker::new(),
        );
        let relation = expl.relation(0, 1);
        let witnesses = expl
            .distinguishing_tests(0, 1)
            .into_iter()
            .map(|t| {
                let allowed_left = expl.verdicts[0].allowed(t);
                let (allowed_by, forbidden_by) = if allowed_left {
                    (expl.models[0].name(), expl.models[1].name())
                } else {
                    (expl.models[1].name(), expl.models[0].name())
                };
                CompareWitness {
                    test: expl.tests[t].name().to_string(),
                    allowed_by: allowed_by.to_string(),
                    forbidden_by: forbidden_by.to_string(),
                }
            })
            .collect();
        Ok(CompareReport {
            left: expl.models[0].name().to_string(),
            right: expl.models[1].name().to_string(),
            relation,
            tests: expl.tests.len(),
            witnesses,
            elapsed: start.elapsed(),
        })
    }
}

/// Builder for [`Query::distinguish`].
#[derive(Clone, Debug)]
pub struct DistinguishQuery {
    models: ModelSpec,
    with_deps: bool,
    checker: CheckerKind,
    config: EngineConfig,
    cache: bool,
    shared: Option<Arc<VerdictCache>>,
}

impl DistinguishQuery {
    /// The model space to separate (at least two models).
    #[must_use]
    pub fn models(mut self, models: ModelSpec) -> Self {
        self.models = models;
        self
    }

    /// Include the dependency-idiom templates in the comparison suite.
    #[must_use]
    pub fn with_deps(mut self, with_deps: bool) -> Self {
        self.with_deps = with_deps;
        self
    }

    /// The checker backend.
    #[must_use]
    pub fn checker(mut self, checker: CheckerKind) -> Self {
        self.checker = checker;
        self
    }

    /// Engine tuning: canonicalization, worker count, batch sizes.
    #[must_use]
    pub fn engine(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Memoize verdicts in a fresh [`VerdictCache`].
    #[must_use]
    pub fn cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Memoize verdicts in an externally owned cache (see
    /// [`SweepQuery::cache_with`]); takes precedence over
    /// [`DistinguishQuery::cache`].
    #[must_use]
    pub fn cache_with(mut self, cache: Arc<VerdictCache>) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Runs the sweep and computes the certified minimum set.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] for unresolvable models or a space of
    /// fewer than two.
    pub fn run(self) -> Result<DistinguishReport, QueryError> {
        let models = self.models.resolve()?;
        if models.len() < 2 {
            return Err(QueryError::InvalidSpec(
                "distinguish needs at least two models".to_string(),
            ));
        }
        let owned = (self.shared.is_none() && self.cache).then(VerdictCache::new);
        let cache: Option<&VerdictCache> = self.shared.as_deref().or(owned.as_ref());
        let checker = self.checker;
        let tests = paper::comparison_tests(self.with_deps);
        let start = Instant::now();
        let (exploration, stats) = Exploration::run_engine(
            models,
            tests,
            || checker.build_batch(),
            &self.config,
            cache,
        );
        let elapsed = start.elapsed();
        let classes = exploration.equivalence_classes();
        let minimal = distinguish::minimal_distinguishing_set(&exploration);
        Ok(DistinguishReport {
            exploration,
            stats,
            classes,
            minimal,
            cache: cache.map(cache_summary),
            elapsed,
        })
    }
}

#[derive(Clone, Debug)]
enum SynthMode {
    Pair { left: String, right: String },
    Matrix(ModelSpec),
}

/// Builder for [`Query::synth`] / [`Query::synth_matrix`].
#[derive(Clone, Debug)]
pub struct SynthQuery {
    mode: SynthMode,
    bounds: SynthBounds,
    max_size: Option<usize>,
    verbose: bool,
}

impl SynthQuery {
    /// The bounded search box.
    #[must_use]
    pub fn bounds(mut self, bounds: SynthBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Cap the searched test length (defaults to the box maximum).
    #[must_use]
    pub fn max_size(mut self, max_size: usize) -> Self {
        self.max_size = Some(max_size);
        self
    }

    /// Include solver counters in the text rendering.
    #[must_use]
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Runs the synthesis.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] for unresolvable models or a matrix of
    /// fewer than two; [`QueryError::Synth`] when the engine rejects the
    /// bounds or a model.
    pub fn run(self) -> Result<SynthReport, QueryError> {
        let max_size = self.max_size.unwrap_or_else(|| self.bounds.max_total());
        match &self.mode {
            SynthMode::Pair { left, right } => {
                let models = vec![resolve::model(left)?, resolve::model(right)?];
                let timings = TimingsCapture::start();
                let start = Instant::now();
                let mut synthesizer = mcm_synth::Synthesizer::new(models, self.bounds)
                    .map_err(|e| QueryError::Synth(e.to_string()))?;
                let pair = synthesizer.pair(0, 1, max_size);
                let elapsed = start.elapsed();
                let timings = timings.finish();
                Ok(SynthReport {
                    bounds: self.bounds,
                    max_size,
                    pair: Some(SynthPair {
                        left: left.clone(),
                        right: right.clone(),
                        length: pair.length,
                        witness: pair.witness,
                        allowed_by: pair.allowed_by,
                        forbidden_by: pair.forbidden_by,
                    }),
                    matrix: None,
                    stats: synthesizer.stats(),
                    verbose: self.verbose,
                    timings,
                    elapsed,
                })
            }
            SynthMode::Matrix(spec) => {
                let models = spec.resolve()?;
                if models.len() < 2 {
                    return Err(QueryError::InvalidSpec(
                        "a synthesis matrix needs at least two models".to_string(),
                    ));
                }
                let timings = TimingsCapture::start();
                let start = Instant::now();
                let mut synthesizer = mcm_synth::Synthesizer::new(models, self.bounds)
                    .map_err(|e| QueryError::Synth(e.to_string()))?;
                let matrix = synthesizer.matrix(max_size);
                let elapsed = start.elapsed();
                let timings = timings.finish();
                Ok(SynthReport {
                    bounds: self.bounds,
                    max_size,
                    pair: None,
                    matrix: Some(SynthMatrix {
                        names: matrix.names,
                        lengths: matrix.lengths,
                    }),
                    stats: synthesizer.stats(),
                    verbose: self.verbose,
                    timings,
                    elapsed,
                })
            }
        }
    }
}

/// Builder for [`Query::check`].
#[derive(Clone, Debug)]
pub struct CheckQuery {
    model: String,
    source: TestSource,
    checker: CheckerKind,
    witness: bool,
}

impl CheckQuery {
    /// The checker backend.
    #[must_use]
    pub fn checker(mut self, checker: CheckerKind) -> Self {
        self.checker = checker;
        self
    }

    /// Render a witness / refutation explanation per test.
    #[must_use]
    pub fn witness(mut self, witness: bool) -> Self {
        self.witness = witness;
        self
    }

    /// Runs the checks.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] for unknown models;
    /// [`QueryError::Io`] / [`QueryError::Parse`] for the test source.
    pub fn run(self) -> Result<CheckReport, QueryError> {
        let model = resolve::model(&self.model)?;
        let tests = self.source.load()?;
        let checker = self.checker.build();
        let entries = tests
            .iter()
            .map(|test| {
                let verdict = checker.check(&model, test);
                let witness = self.witness.then(|| {
                    let exec = test.execution();
                    explain::render(&model, &exec, &verdict)
                });
                CheckEntry {
                    test: test.name().to_string(),
                    allowed: verdict.allowed,
                    witness,
                }
            })
            .collect();
        Ok(CheckReport {
            model: model.name().to_string(),
            checker: self.checker.name(),
            entries,
        })
    }
}

/// Builder for [`Query::suite`].
#[derive(Clone, Copy, Debug)]
pub struct SuiteQuery {
    with_deps: bool,
    full: bool,
}

impl SuiteQuery {
    /// Render full test bodies instead of names in text mode.
    #[must_use]
    pub fn full(mut self, full: bool) -> Self {
        self.full = full;
        self
    }

    /// Materializes the suite.
    #[must_use]
    pub fn run(self) -> SuiteReport {
        let suite = template_suite(self.with_deps);
        SuiteReport {
            with_deps: self.with_deps,
            corollary1_bound: suite.corollary1_bound,
            tests: suite.tests,
            full: self.full,
        }
    }
}

fn cache_summary(cache: &VerdictCache) -> CacheSummary {
    CacheSummary {
        entries: cache.len(),
        hits: cache.hits(),
        hits_ram: cache.hits_ram(),
        hits_disk: cache.hits_disk(),
        misses: cache.misses(),
        shard_contention: cache.shard_contention(),
    }
}

fn store_summary(disk: &DiskCache) -> StoreSummary {
    let stats = disk.stats();
    StoreSummary {
        path: disk.path().display().to_string(),
        hydrated: stats.hydrated,
        appended: stats.appended,
        flushes: stats.flushes,
        write_errors: stats.write_errors,
        bytes: stats.bytes,
        recovered_tail: stats.recovered_tail,
    }
}

fn named_pairs(exploration: &Exploration) -> Vec<(String, String)> {
    exploration
        .equivalent_pairs()
        .into_iter()
        .map(|(i, j)| {
            (
                exploration.models[i].name().to_string(),
                exploration.models[j].name().to_string(),
            )
        })
        .collect()
}

fn figures_report(selection: FigureSelection) -> FiguresReport {
    use FigureSelection as S;
    let want = |s: S| selection == s || selection == S::All;
    let fig1 = want(S::Fig1).then(|| {
        let test = catalog::test_a();
        let checker = ExplicitChecker::new();
        let verdicts = [
            mcm_models::named::tso(),
            mcm_models::named::sc(),
            mcm_models::named::ibm370(),
        ]
        .into_iter()
        .map(|model| {
            let allowed = checker.is_allowed(&model, &test);
            (model.name().to_string(), allowed)
        })
        .collect();
        Fig1Figure { test, verdicts }
    });
    let fig2 = want(S::Fig2).then(|| {
        use mcm_gen::{template, Segment, SegmentType};
        let rw = Segment::enumerate(SegmentType::ReadWrite, true);
        let ww = Segment::enumerate(SegmentType::WriteWrite, true);
        let wr = Segment::enumerate(SegmentType::WriteRead, true);
        let rr = Segment::enumerate(SegmentType::ReadRead, true);
        [
            template::case1(rw[1]),
            template::case2(ww[1]),
            template::case3a(rr[1], ww[1]),
            template::case3b(rr[1], wr[1], rw[1]),
            template::case4(wr[1]),
            template::case5a(wr[0], rr[3]),
            template::case5b(wr[0], rw[3]),
        ]
        .into_iter()
        .flatten()
        .collect()
    });
    let fig3 = want(S::Fig3).then(catalog::nine_tests);
    let counts = want(S::Counts).then(|| {
        let bounds = naive::NaiveBounds::default();
        CountsFigure {
            bound_with_deps: count::paper_bound(true),
            bound_without_deps: count::paper_bound(false),
            naive_raw: naive::count_tests_raw(&bounds),
            naive_canonical: naive::count_tests(&bounds),
            suite_with_deps: template_suite(true).len(),
            suite_without_deps: template_suite(false).len(),
        }
    });
    let fig4 = want(S::Fig4).then(|| {
        let report = paper::explore_digit_space(false);
        let dot = render_dot(
            &report.exploration,
            &report.lattice,
            &DotOptions {
                name: "figure4".to_string(),
                preferred_tests: report.nine_test_indices.clone(),
                ..DotOptions::default()
            },
        );
        Fig4Figure {
            models: report.exploration.models.len(),
            classes: report.lattice.classes.len(),
            edges: report.lattice.edges.len(),
            merged: report.equivalent_pairs,
            dot,
        }
    });
    FiguresReport {
        fig1,
        fig2,
        fig3,
        counts,
        fig4,
    }
}
