//! The error type shared by query building, execution and rendering.

use std::fmt;

/// Why a query cannot be built, run or rendered.
///
/// The variants split along the CLI's exit-code boundary:
/// [`QueryError::is_usage`] distinguishes *the request was malformed*
/// (unknown model, bad bounds, unsupported format — exit 2) from *the run
/// failed* (unreadable file, parse error — exit 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The request names something that does not exist or combines
    /// options that cannot go together (a usage error).
    InvalidSpec(String),
    /// The report type cannot be rendered in the requested format (a
    /// usage error): e.g. `csv` of a synthesis report.
    Unsupported {
        /// The report kind (`sweep`, `compare`, ...).
        report: &'static str,
        /// The requested format name.
        format: &'static str,
    },
    /// A file could not be read or written (a run failure).
    Io {
        /// The offending path.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// Input (a `.litmus` file) failed to parse (a run failure).
    Parse(String),
    /// The synthesis engine rejected the request (a run failure).
    Synth(String),
}

impl QueryError {
    /// Whether this is a malformed *request* (CLI exit 2) rather than a
    /// failed *run* (CLI exit 1).
    #[must_use]
    pub fn is_usage(&self) -> bool {
        matches!(
            self,
            QueryError::InvalidSpec(_) | QueryError::Unsupported { .. }
        )
    }

    /// Wraps an I/O failure on `path`.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        QueryError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidSpec(message) => write!(f, "{message}"),
            QueryError::Unsupported { report, format } => {
                write!(f, "{report} reports cannot be rendered as {format}")
            }
            QueryError::Io { path, message } => write!(f, "cannot access {path}: {message}"),
            QueryError::Parse(message) => write!(f, "{message}"),
            QueryError::Synth(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_classification_follows_the_exit_code_contract() {
        assert!(QueryError::InvalidSpec("x".into()).is_usage());
        assert!(QueryError::Unsupported {
            report: "synth",
            format: "csv"
        }
        .is_usage());
        assert!(!QueryError::Parse("x".into()).is_usage());
        assert!(!QueryError::Synth("x".into()).is_usage());
        assert!(!QueryError::Io {
            path: "f".into(),
            message: "m".into()
        }
        .is_usage());
    }

    #[test]
    fn messages_render_readably() {
        let err = QueryError::Unsupported {
            report: "synth",
            format: "csv",
        };
        assert!(err.to_string().contains("synth"));
        assert!(err.to_string().contains("csv"));
        let err = QueryError::io("missing.litmus", &std::io::Error::other("nope"));
        assert!(err.to_string().contains("missing.litmus"));
    }
}
