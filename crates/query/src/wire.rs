//! The wire format: building a query **from** a JSON document — the
//! inverse of the render path, and the request language of `mcm serve`.
//!
//! PR 5 made every report serializable; this module closes the loop so a
//! query itself is data. A [`WireRequest`] is parsed from a JSON object
//! with [`WireRequest::parse`] (strictly: unknown fields, malformed
//! values and out-of-range bounds are [`QueryError::InvalidSpec`] usage
//! errors, never panics), executed with [`QuerySpec::run`], and the
//! resulting report rendered in the request's [`Format`].
//!
//! The request document names the query kind plus that kind's fields,
//! with defaults mirroring the builder defaults of [`crate::Query`]:
//!
//! ```json
//! {
//!   "query": "sweep",
//!   "models": "figure4",
//!   "tests": {"template_suite": {"with_deps": false}},
//!   "checker": "explicit",
//!   "engine": {"jobs": 1},
//!   "cache": true,
//!   "format": "json"
//! }
//! ```
//!
//! Kinds: `sweep`, `compare`, `distinguish`, `analyze`, `synth`,
//! `synth_matrix`, `check`, `suite`, `catalog`, `figures`. Test sources: `"catalog"`,
//! `"template_suite"`, `{"template_suite": {"with_deps": bool}}`,
//! `{"stream": {"max_accesses": N, "max_locs": N, "fences": bool,
//! "deps": bool, "limit": N, "shard": "i/n"}}`,
//! `{"inline": "<litmus text>"}`. The wire
//! format is deliberately **hermetic**: there is no file-backed source,
//! so a server executing wire requests never touches the filesystem.
//!
//! ## Example
//!
//! ```
//! use mcm_query::wire::WireRequest;
//!
//! let request = WireRequest::parse(
//!     r#"{"query": "compare", "left": "TSO", "right": "x86"}"#,
//! ).unwrap();
//! let outcome = request.spec.run(None).unwrap();
//! let body = outcome.report.render(request.format).unwrap();
//! assert!(body.contains("equivalent"));
//! ```

use std::sync::Arc;

use mcm_axiomatic::CheckerKind;
use mcm_core::json::Json;
use mcm_explore::{EngineConfig, SweepStats, VerdictCache};
use mcm_gen::{Shard, StreamBounds};
use mcm_synth::SynthBounds;

use crate::error::QueryError;
use crate::render::{Format, Render};
use crate::reports::FigureSelection;
use crate::resolve::ModelSpec;
use crate::source::TestSource;
use crate::Query;

/// A parsed wire request: what to run and how to render it.
#[derive(Clone, Debug)]
pub struct WireRequest {
    /// The query to execute.
    pub spec: QuerySpec,
    /// The requested output format (default [`Format::Json`]).
    pub format: Format,
}

impl WireRequest {
    /// Parses a complete request document from JSON text.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] for JSON that fails to parse, is not
    /// an object, names an unknown query kind or field, or carries a
    /// malformed value.
    pub fn parse(text: &str) -> Result<WireRequest, QueryError> {
        let doc = Json::parse(text)
            .map_err(|e| QueryError::InvalidSpec(format!("request is not valid JSON: {e}")))?;
        WireRequest::from_json(&doc)
    }

    /// Parses a request from an already-parsed JSON document.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] as for [`WireRequest::parse`].
    pub fn from_json(doc: &Json) -> Result<WireRequest, QueryError> {
        let pairs = expect_object(doc, "request")?;
        let format = match get(pairs, "format") {
            None => Format::Json,
            Some(v) => {
                let name = as_str(v, "format")?;
                Format::from_name(name).ok_or_else(|| {
                    invalid(format!("unknown format `{name}`; try text|json|csv|dot"))
                })?
            }
        };
        Ok(WireRequest {
            spec: QuerySpec::from_json(doc)?,
            format,
        })
    }
}

/// A declarative, executable query — every [`crate::Query`] kind as
/// data. Fields are public so a policy layer (the server's ceilings) can
/// clamp them before running.
#[derive(Clone, Debug)]
pub enum QuerySpec {
    /// [`Query::sweep`].
    Sweep(SweepSpec),
    /// [`Query::compare`].
    Compare(CompareSpec),
    /// [`Query::distinguish`].
    Distinguish(DistinguishSpec),
    /// [`Query::analyze`].
    Analyze(AnalyzeSpec),
    /// [`Query::synth`].
    Synth(SynthSpec),
    /// [`Query::synth_matrix`].
    SynthMatrix(SynthMatrixSpec),
    /// [`Query::check`].
    Check(CheckSpec),
    /// [`Query::suite`].
    Suite(SuiteSpec),
    /// [`Query::catalog`].
    Catalog,
    /// [`Query::figures`].
    Figures(FigureSelection),
}

/// Wire form of [`Query::sweep`].
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// The model space.
    pub models: ModelSpec,
    /// The test source (never [`TestSource::File`] on the wire).
    pub source: TestSource,
    /// The checker backend.
    pub checker: CheckerKind,
    /// Engine tuning.
    pub engine: EngineConfig,
    /// Verdict memoization: `Some(true)` forces a cache, `Some(false)`
    /// forbids one, `None` defers to the runner (a server supplies its
    /// shared cache; a direct run uses none).
    pub cache: Option<bool>,
    /// Run the warm Figure-4 re-sweep demo after the main sweep.
    pub warm_figure4_demo: bool,
}

/// Wire form of [`Query::compare`].
#[derive(Clone, Debug)]
pub struct CompareSpec {
    /// Left model name.
    pub left: String,
    /// Right model name.
    pub right: String,
    /// Include dependency-idiom templates in the comparison suite.
    pub with_deps: bool,
}

/// Wire form of [`Query::distinguish`].
#[derive(Clone, Debug)]
pub struct DistinguishSpec {
    /// The model space (at least two once resolved).
    pub models: ModelSpec,
    /// Include dependency-idiom templates in the comparison suite.
    pub with_deps: bool,
    /// The checker backend.
    pub checker: CheckerKind,
    /// Engine tuning.
    pub engine: EngineConfig,
    /// Verdict memoization (see [`SweepSpec::cache`]).
    pub cache: Option<bool>,
}

/// Wire form of [`Query::analyze`] — a purely static query: it builds
/// the strength lattice and lint findings without executing any litmus
/// test, so it needs no checker, engine or cache fields.
#[derive(Clone, Debug)]
pub struct AnalyzeSpec {
    /// The model space.
    pub models: ModelSpec,
    /// Tests to lint, if any (materializable sources only).
    pub source: Option<TestSource>,
}

/// Wire form of [`Query::synth`].
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// Left model name.
    pub left: String,
    /// Right model name.
    pub right: String,
    /// The bounded search box.
    pub bounds: SynthBounds,
    /// Cap on the searched test length (default: the box maximum).
    pub max_size: Option<usize>,
    /// Include solver counters in text renderings.
    pub verbose: bool,
}

/// Wire form of [`Query::synth_matrix`].
#[derive(Clone, Debug)]
pub struct SynthMatrixSpec {
    /// The model space (at least two once resolved).
    pub models: ModelSpec,
    /// The bounded search box.
    pub bounds: SynthBounds,
    /// Cap on the searched test length (default: the box maximum).
    pub max_size: Option<usize>,
    /// Include solver counters in text renderings.
    pub verbose: bool,
}

/// Wire form of [`Query::check`].
#[derive(Clone, Debug)]
pub struct CheckSpec {
    /// The model name.
    pub model: String,
    /// The tests to check (materializable sources only).
    pub source: TestSource,
    /// The checker backend.
    pub checker: CheckerKind,
    /// Render a witness / refutation explanation per test.
    pub witness: bool,
}

/// Wire form of [`Query::suite`].
#[derive(Clone, Copy, Debug)]
pub struct SuiteSpec {
    /// Include the dependency-idiom template variants.
    pub with_deps: bool,
    /// Render full test bodies in text mode.
    pub full: bool,
}

/// What executing a [`QuerySpec`] produced: the report (render it in any
/// [`Format`]) plus, for engine-driven kinds, the sweep counters a
/// service aggregates into its `/statsz` view.
pub struct WireOutcome {
    /// The typed report, behind the common render trait.
    pub report: Box<dyn Render>,
    /// Engine counters, when the query ran the sweep engine.
    pub stats: Option<SweepStats>,
}

impl QuerySpec {
    /// The stable kind name (`sweep`, `compare`, ...), matching the
    /// `query` field that selects it on the wire.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            QuerySpec::Sweep(_) => "sweep",
            QuerySpec::Compare(_) => "compare",
            QuerySpec::Distinguish(_) => "distinguish",
            QuerySpec::Analyze(_) => "analyze",
            QuerySpec::Synth(_) => "synth",
            QuerySpec::SynthMatrix(_) => "synth_matrix",
            QuerySpec::Check(_) => "check",
            QuerySpec::Suite(_) => "suite",
            QuerySpec::Catalog => "catalog",
            QuerySpec::Figures(_) => "figures",
        }
    }

    /// Parses the query portion of a request document.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] for an unknown kind, unknown fields,
    /// or malformed values.
    pub fn from_json(doc: &Json) -> Result<QuerySpec, QueryError> {
        let pairs = expect_object(doc, "request")?;
        let kind = as_str(
            get(pairs, "query").ok_or_else(|| invalid("request is missing `query`"))?,
            "query",
        )?;
        match kind {
            "sweep" => parse_sweep(pairs),
            "compare" => parse_compare(pairs),
            "distinguish" => parse_distinguish(pairs),
            "analyze" => parse_analyze(pairs),
            "synth" => parse_synth(pairs),
            "synth_matrix" => parse_synth_matrix(pairs),
            "check" => parse_check(pairs),
            "suite" => parse_suite(pairs),
            "catalog" => {
                check_fields(pairs, &[])?;
                Ok(QuerySpec::Catalog)
            }
            "figures" => parse_figures(pairs),
            other => Err(invalid(format!(
                "unknown query kind `{other}`; try sweep|compare|distinguish|analyze|\
                 synth|synth_matrix|check|suite|catalog|figures"
            ))),
        }
    }

    /// Executes the query. `shared` is the runner's process-wide
    /// [`VerdictCache`], used by cache-eligible kinds unless the request
    /// said `"cache": false`; with no shared cache, `"cache": true`
    /// builds a fresh one (the CLI's `--cache` semantics).
    ///
    /// # Errors
    ///
    /// Whatever the underlying query's `run` reports — unresolvable
    /// models, bad bounds, litmus text that fails to parse.
    pub fn run(&self, shared: Option<&Arc<VerdictCache>>) -> Result<WireOutcome, QueryError> {
        match self {
            QuerySpec::Sweep(spec) => {
                let mut query = Query::sweep()
                    .models(spec.models.clone())
                    .tests(spec.source.clone())
                    .checker(spec.checker)
                    .engine(spec.engine.clone())
                    .warm_figure4_demo(spec.warm_figure4_demo);
                query = match (shared, spec.cache) {
                    (Some(cache), None | Some(true)) => query.cache_with(Arc::clone(cache)),
                    (None, Some(true)) => query.cache(true),
                    _ => query,
                };
                let report = query.run()?;
                let stats = report.stats;
                Ok(WireOutcome {
                    report: Box::new(report),
                    stats: Some(stats),
                })
            }
            QuerySpec::Compare(spec) => {
                let report = Query::compare(spec.left.as_str(), spec.right.as_str())
                    .with_deps(spec.with_deps)
                    .run()?;
                Ok(WireOutcome {
                    report: Box::new(report),
                    stats: None,
                })
            }
            QuerySpec::Distinguish(spec) => {
                let mut query = Query::distinguish()
                    .models(spec.models.clone())
                    .with_deps(spec.with_deps)
                    .checker(spec.checker)
                    .engine(spec.engine.clone());
                query = match (shared, spec.cache) {
                    (Some(cache), None | Some(true)) => query.cache_with(Arc::clone(cache)),
                    (None, Some(true)) => query.cache(true),
                    _ => query,
                };
                let report = query.run()?;
                let stats = report.stats;
                Ok(WireOutcome {
                    report: Box::new(report),
                    stats: Some(stats),
                })
            }
            QuerySpec::Analyze(spec) => {
                let mut query = Query::analyze().models(spec.models.clone());
                if let Some(source) = &spec.source {
                    query = query.tests(source.clone());
                }
                Ok(WireOutcome {
                    report: Box::new(query.run()?),
                    stats: None,
                })
            }
            QuerySpec::Synth(spec) => {
                let mut query = Query::synth(spec.left.as_str(), spec.right.as_str())
                    .bounds(spec.bounds)
                    .verbose(spec.verbose);
                if let Some(max_size) = spec.max_size {
                    query = query.max_size(max_size);
                }
                Ok(WireOutcome {
                    report: Box::new(query.run()?),
                    stats: None,
                })
            }
            QuerySpec::SynthMatrix(spec) => {
                let mut query = Query::synth_matrix(spec.models.clone())
                    .bounds(spec.bounds)
                    .verbose(spec.verbose);
                if let Some(max_size) = spec.max_size {
                    query = query.max_size(max_size);
                }
                Ok(WireOutcome {
                    report: Box::new(query.run()?),
                    stats: None,
                })
            }
            QuerySpec::Check(spec) => {
                let report = Query::check(spec.model.as_str(), spec.source.clone())
                    .checker(spec.checker)
                    .witness(spec.witness)
                    .run()?;
                Ok(WireOutcome {
                    report: Box::new(report),
                    stats: None,
                })
            }
            QuerySpec::Suite(spec) => {
                let report = Query::suite(spec.with_deps).full(spec.full).run();
                Ok(WireOutcome {
                    report: Box::new(report),
                    stats: None,
                })
            }
            QuerySpec::Catalog => Ok(WireOutcome {
                report: Box::new(Query::catalog()),
                stats: None,
            }),
            QuerySpec::Figures(selection) => Ok(WireOutcome {
                report: Box::new(Query::figures(*selection)),
                stats: None,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Per-kind field parsing.

/// The fields every request document may carry regardless of kind.
const COMMON_FIELDS: [&str; 2] = ["query", "format"];

fn parse_sweep(pairs: &[(String, Json)]) -> Result<QuerySpec, QueryError> {
    check_fields(
        pairs,
        &["models", "tests", "checker", "engine", "cache", "warm_figure4_demo"],
    )?;
    Ok(QuerySpec::Sweep(SweepSpec {
        models: parse_models(pairs, ModelSpec::Figure4)?,
        source: match get(pairs, "tests") {
            None => TestSource::TemplateSuite { with_deps: false },
            Some(v) => parse_source(v)?,
        },
        checker: parse_checker(pairs)?,
        engine: parse_engine(pairs)?,
        cache: opt_bool(pairs, "cache")?,
        warm_figure4_demo: opt_bool(pairs, "warm_figure4_demo")?.unwrap_or(false),
    }))
}

fn parse_compare(pairs: &[(String, Json)]) -> Result<QuerySpec, QueryError> {
    check_fields(pairs, &["left", "right", "with_deps"])?;
    Ok(QuerySpec::Compare(CompareSpec {
        left: required_str(pairs, "left")?,
        right: required_str(pairs, "right")?,
        with_deps: opt_bool(pairs, "with_deps")?.unwrap_or(true),
    }))
}

fn parse_distinguish(pairs: &[(String, Json)]) -> Result<QuerySpec, QueryError> {
    check_fields(pairs, &["models", "with_deps", "checker", "engine", "cache"])?;
    Ok(QuerySpec::Distinguish(DistinguishSpec {
        models: parse_models(pairs, ModelSpec::Full90)?,
        with_deps: opt_bool(pairs, "with_deps")?.unwrap_or(true),
        checker: parse_checker(pairs)?,
        engine: parse_engine(pairs)?,
        cache: opt_bool(pairs, "cache")?,
    }))
}

fn parse_analyze(pairs: &[(String, Json)]) -> Result<QuerySpec, QueryError> {
    check_fields(pairs, &["models", "tests"])?;
    let source = match get(pairs, "tests") {
        None => None,
        Some(v) => Some(parse_source(v)?),
    };
    if matches!(source, Some(TestSource::Stream { .. })) {
        return Err(invalid(
            "analyze lints a materializable test source, not a stream",
        ));
    }
    Ok(QuerySpec::Analyze(AnalyzeSpec {
        models: parse_models(pairs, ModelSpec::Full90)?,
        source,
    }))
}

fn parse_synth(pairs: &[(String, Json)]) -> Result<QuerySpec, QueryError> {
    check_fields(pairs, &["left", "right", "bounds", "max_size", "verbose"])?;
    let bounds = parse_synth_bounds(pairs)?;
    Ok(QuerySpec::Synth(SynthSpec {
        left: required_str(pairs, "left")?,
        right: required_str(pairs, "right")?,
        max_size: parse_max_size(pairs, &bounds)?,
        bounds,
        verbose: opt_bool(pairs, "verbose")?.unwrap_or(false),
    }))
}

fn parse_synth_matrix(pairs: &[(String, Json)]) -> Result<QuerySpec, QueryError> {
    check_fields(pairs, &["models", "bounds", "max_size", "verbose"])?;
    let bounds = parse_synth_bounds(pairs)?;
    Ok(QuerySpec::SynthMatrix(SynthMatrixSpec {
        models: parse_models(pairs, ModelSpec::Figure4)?,
        max_size: parse_max_size(pairs, &bounds)?,
        bounds,
        verbose: opt_bool(pairs, "verbose")?.unwrap_or(false),
    }))
}

fn parse_check(pairs: &[(String, Json)]) -> Result<QuerySpec, QueryError> {
    check_fields(pairs, &["model", "tests", "checker", "witness"])?;
    let source = parse_source(
        get(pairs, "tests").ok_or_else(|| invalid("check requires `tests`"))?,
    )?;
    if matches!(source, TestSource::Stream { .. }) {
        return Err(invalid(
            "check needs a materializable test source, not a stream",
        ));
    }
    Ok(QuerySpec::Check(CheckSpec {
        model: required_str(pairs, "model")?,
        source,
        checker: parse_checker(pairs)?,
        witness: opt_bool(pairs, "witness")?.unwrap_or(false),
    }))
}

fn parse_suite(pairs: &[(String, Json)]) -> Result<QuerySpec, QueryError> {
    check_fields(pairs, &["with_deps", "full"])?;
    Ok(QuerySpec::Suite(SuiteSpec {
        with_deps: opt_bool(pairs, "with_deps")?.unwrap_or(true),
        full: opt_bool(pairs, "full")?.unwrap_or(false),
    }))
}

fn parse_figures(pairs: &[(String, Json)]) -> Result<QuerySpec, QueryError> {
    check_fields(pairs, &["which"])?;
    let which = match get(pairs, "which") {
        None => "all".to_string(),
        Some(v) => as_str(v, "which")?.to_string(),
    };
    let selection = FigureSelection::from_name(&which)
        .ok_or_else(|| invalid(format!("unknown figure `{which}`")))?;
    Ok(QuerySpec::Figures(selection))
}

// ---------------------------------------------------------------------------
// Shared field parsers.

fn parse_models(pairs: &[(String, Json)], default: ModelSpec) -> Result<ModelSpec, QueryError> {
    match get(pairs, "models") {
        None => Ok(default),
        Some(Json::Str(spec)) => Ok(ModelSpec::parse(spec)),
        Some(Json::Array(items)) => {
            let names: Vec<String> = items
                .iter()
                .map(|item| as_str(item, "models[]").map(str::to_string))
                .collect::<Result<_, _>>()?;
            Ok(ModelSpec::List(names))
        }
        Some(_) => Err(invalid(
            "`models` must be a set name (figure4|90|named|comma-list) or an array of names",
        )),
    }
}

fn parse_source(value: &Json) -> Result<TestSource, QueryError> {
    match value {
        Json::Str(name) => match name.as_str() {
            "catalog" => Ok(TestSource::Catalog),
            "template_suite" => Ok(TestSource::TemplateSuite { with_deps: false }),
            other => Err(invalid(format!(
                "unknown test source `{other}`; try catalog, template_suite, \
                 or an object form (template_suite/stream/inline)"
            ))),
        },
        Json::Object(pairs) => {
            let [(key, body)] = pairs.as_slice() else {
                return Err(invalid(
                    "a test-source object must have exactly one field \
                     (template_suite, stream or inline)",
                ));
            };
            match key.as_str() {
                "template_suite" => {
                    let inner = expect_object(body, "tests.template_suite")?;
                    check_named_fields(inner, "tests.template_suite", &["with_deps"])?;
                    Ok(TestSource::TemplateSuite {
                        with_deps: opt_bool(inner, "with_deps")?.unwrap_or(false),
                    })
                }
                "stream" => parse_stream(body),
                "inline" => Ok(TestSource::Inline(as_str(body, "tests.inline")?.to_string())),
                other => Err(invalid(format!(
                    "unknown test source `{other}`; the wire format has no file-backed \
                     sources — use inline litmus text"
                ))),
            }
        }
        _ => Err(invalid("`tests` must be a source name or a source object")),
    }
}

fn parse_stream(body: &Json) -> Result<TestSource, QueryError> {
    let inner = expect_object(body, "tests.stream")?;
    check_named_fields(
        inner,
        "tests.stream",
        &["max_accesses", "max_locs", "fences", "deps", "limit", "shard"],
    )?;
    let mut bounds = StreamBounds::default();
    if let Some(n) = opt_int(inner, "max_accesses")? {
        bounds.max_accesses_per_thread = usize::try_from(n)
            .ok()
            .filter(|&n| (1..=4).contains(&n))
            .ok_or_else(|| invalid(format!("stream max_accesses needs 1..=4, got {n}")))?;
    }
    if let Some(n) = opt_int(inner, "max_locs")? {
        bounds.max_locs = u8::try_from(n)
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| invalid(format!("stream max_locs needs 1..=255, got {n}")))?;
    }
    bounds.include_fences = opt_bool(inner, "fences")?.unwrap_or(false);
    bounds.include_deps = opt_bool(inner, "deps")?.unwrap_or(false);
    let limit = match opt_int(inner, "limit")? {
        None => None,
        Some(n) => Some(
            usize::try_from(n)
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| invalid(format!("stream limit needs a positive integer, got {n}")))?,
        ),
    };
    let shard = match get(inner, "shard") {
        None => None,
        Some(v) => Some(
            as_str(v, "tests.stream.shard")?
                .parse::<Shard>()
                .map_err(|e| invalid(format!("stream shard: {e}")))?,
        ),
    };
    Ok(TestSource::Stream { bounds, limit, shard })
}

fn parse_checker(pairs: &[(String, Json)]) -> Result<CheckerKind, QueryError> {
    match get(pairs, "checker") {
        None => Ok(CheckerKind::Explicit),
        Some(v) => {
            let name = as_str(v, "checker")?;
            CheckerKind::from_name(name).ok_or_else(|| {
                let known: Vec<&str> = CheckerKind::ALL.iter().map(|k| k.name()).collect();
                invalid(format!("unknown checker `{name}`; try one of {}", known.join("/")))
            })
        }
    }
}

fn parse_engine(pairs: &[(String, Json)]) -> Result<EngineConfig, QueryError> {
    let mut config = EngineConfig::default();
    let Some(value) = get(pairs, "engine") else {
        return Ok(config);
    };
    let inner = expect_object(value, "engine")?;
    check_named_fields(
        inner,
        "engine",
        &["canonicalize", "jobs", "batch_size", "stream_chunk"],
    )?;
    config.canonicalize = opt_bool(inner, "canonicalize")?.unwrap_or(false);
    if let Some(n) = opt_int(inner, "jobs")? {
        config.jobs = Some(
            usize::try_from(n)
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| invalid(format!("engine jobs needs a positive integer, got {n}")))?,
        );
    }
    if let Some(n) = opt_int(inner, "batch_size")? {
        config.batch_size = usize::try_from(n)
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| invalid(format!("engine batch_size needs a positive integer, got {n}")))?;
    }
    if let Some(n) = opt_int(inner, "stream_chunk")? {
        config.stream_chunk = usize::try_from(n)
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| {
                invalid(format!("engine stream_chunk needs a positive integer, got {n}"))
            })?;
    }
    Ok(config)
}

fn parse_synth_bounds(pairs: &[(String, Json)]) -> Result<SynthBounds, QueryError> {
    let mut bounds = SynthBounds::default();
    let Some(value) = get(pairs, "bounds") else {
        return Ok(bounds);
    };
    let inner = expect_object(value, "bounds")?;
    check_named_fields(inner, "bounds", &["max_accesses", "max_locs", "fences", "deps"])?;
    if let Some(n) = opt_int(inner, "max_accesses")? {
        bounds.max_accesses_per_thread = usize::try_from(n)
            .ok()
            .filter(|&n| (1..=4).contains(&n))
            .ok_or_else(|| invalid(format!("bounds max_accesses needs 1..=4, got {n}")))?;
    }
    if let Some(n) = opt_int(inner, "max_locs")? {
        bounds.max_locs = u8::try_from(n)
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| invalid(format!("bounds max_locs needs 1..=255, got {n}")))?;
    }
    bounds.include_fences = opt_bool(inner, "fences")?.unwrap_or(false);
    bounds.include_deps = opt_bool(inner, "deps")?.unwrap_or(false);
    Ok(bounds)
}

fn parse_max_size(
    pairs: &[(String, Json)],
    bounds: &SynthBounds,
) -> Result<Option<usize>, QueryError> {
    match opt_int(pairs, "max_size")? {
        None => Ok(None),
        Some(n) => Ok(Some(
            usize::try_from(n)
                .ok()
                .filter(|&n| (bounds.min_total()..=bounds.max_total()).contains(&n))
                .ok_or_else(|| {
                    invalid(format!(
                        "max_size needs {}..={} for these bounds, got {n}",
                        bounds.min_total(),
                        bounds.max_total()
                    ))
                })?,
        )),
    }
}

// ---------------------------------------------------------------------------
// JSON plumbing: strict field checks and typed getters.

fn invalid(message: impl Into<String>) -> QueryError {
    QueryError::InvalidSpec(message.into())
}

fn expect_object<'a>(value: &'a Json, what: &str) -> Result<&'a [(String, Json)], QueryError> {
    value
        .as_object()
        .ok_or_else(|| invalid(format!("{what} must be a JSON object")))
}

/// Rejects fields outside `allowed` + the common envelope fields.
fn check_fields(pairs: &[(String, Json)], allowed: &[&str]) -> Result<(), QueryError> {
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) && !COMMON_FIELDS.contains(&key.as_str()) {
            return Err(invalid(format!("unknown request field `{key}`")));
        }
    }
    Ok(())
}

/// Rejects fields of a named sub-object outside `allowed`.
fn check_named_fields(
    pairs: &[(String, Json)],
    what: &str,
    allowed: &[&str],
) -> Result<(), QueryError> {
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(invalid(format!("unknown {what} field `{key}`")));
        }
    }
    Ok(())
}

fn get<'a>(pairs: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_str<'a>(value: &'a Json, what: &str) -> Result<&'a str, QueryError> {
    value
        .as_str()
        .ok_or_else(|| invalid(format!("`{what}` must be a string")))
}

fn required_str(pairs: &[(String, Json)], key: &str) -> Result<String, QueryError> {
    get(pairs, key)
        .ok_or_else(|| invalid(format!("request is missing `{key}`")))
        .and_then(|v| as_str(v, key))
        .map(str::to_string)
}

fn opt_bool(pairs: &[(String, Json)], key: &str) -> Result<Option<bool>, QueryError> {
    match get(pairs, key) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| invalid(format!("`{key}` must be a boolean"))),
    }
}

fn opt_int(pairs: &[(String, Json)], key: &str) -> Result<Option<i64>, QueryError> {
    match get(pairs, key) {
        None => Ok(None),
        Some(v) => v
            .as_i64()
            .map(Some)
            .ok_or_else(|| invalid(format!("`{key}` must be an integer"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_json(text: &str) -> String {
        let request = WireRequest::parse(text).expect("request parses");
        let outcome = request.spec.run(None).expect("request runs");
        outcome.report.render(request.format).expect("renders")
    }

    #[test]
    fn minimal_requests_of_every_kind_parse() {
        for (text, kind) in [
            (r#"{"query": "sweep"}"#, "sweep"),
            (r#"{"query": "compare", "left": "SC", "right": "TSO"}"#, "compare"),
            (r#"{"query": "distinguish"}"#, "distinguish"),
            (r#"{"query": "analyze", "models": ["SC", "TSO"]}"#, "analyze"),
            (r#"{"query": "synth", "left": "SC", "right": "TSO"}"#, "synth"),
            (r#"{"query": "synth_matrix", "models": ["SC", "TSO"]}"#, "synth_matrix"),
            (
                r#"{"query": "check", "model": "SC", "tests": "catalog"}"#,
                "check",
            ),
            (r#"{"query": "suite"}"#, "suite"),
            (r#"{"query": "catalog"}"#, "catalog"),
            (r#"{"query": "figures", "which": "fig3"}"#, "figures"),
        ] {
            let request = WireRequest::parse(text).expect(text);
            assert_eq!(request.spec.kind(), kind, "{text}");
            assert_eq!(request.format, Format::Json, "{text}");
        }
    }

    #[test]
    fn wire_round_trip_matches_the_builder_path() {
        let body = run_json(
            r#"{"query": "sweep", "models": ["SC", "TSO"], "tests": "catalog",
                "engine": {"jobs": 1}}"#,
        );
        let direct = Query::sweep()
            .models(ModelSpec::List(vec!["SC".into(), "TSO".into()]))
            .tests(TestSource::Catalog)
            .engine(EngineConfig {
                jobs: Some(1),
                ..EngineConfig::default()
            })
            .run()
            .unwrap();
        let mut served = Json::parse(&body).unwrap();
        let mut expected = Json::parse(&direct.render(Format::Json).unwrap()).unwrap();
        served.strip_keys(&["elapsed_ms", "timings"]);
        expected.strip_keys(&["elapsed_ms", "timings"]);
        assert_eq!(served, expected);
    }

    #[test]
    fn formats_and_defaults_resolve() {
        let request = WireRequest::parse(
            r#"{"query": "suite", "format": "text", "with_deps": false, "full": true}"#,
        )
        .unwrap();
        assert_eq!(request.format, Format::Text);
        let QuerySpec::Suite(spec) = &request.spec else {
            panic!("expected a suite spec");
        };
        assert!(!spec.with_deps);
        assert!(spec.full);
    }

    #[test]
    fn stream_sources_parse_with_bounds() {
        let request = WireRequest::parse(
            r#"{"query": "sweep",
                "tests": {"stream": {"max_accesses": 2, "max_locs": 2, "fences": true,
                                     "limit": 50, "shard": "1/4"}}}"#,
        )
        .unwrap();
        let QuerySpec::Sweep(spec) = &request.spec else {
            panic!("expected a sweep spec");
        };
        let TestSource::Stream { bounds, limit, shard } = &spec.source else {
            panic!("expected a stream source");
        };
        assert_eq!(bounds.max_accesses_per_thread, 2);
        assert_eq!(bounds.max_locs, 2);
        assert!(bounds.include_fences);
        assert!(!bounds.include_deps);
        assert_eq!(*limit, Some(50));
        assert_eq!(shard.map(|s| (s.index(), s.count())), Some((1, 4)));
    }

    #[test]
    fn malformed_requests_are_usage_errors() {
        for bad in [
            "not json at all",
            "[1, 2, 3]",
            r#"{"format": "json"}"#,
            r#"{"query": "teleport"}"#,
            r#"{"query": "sweep", "warp": 9}"#,
            r#"{"query": "sweep", "models": 7}"#,
            r#"{"query": "sweep", "tests": {"file": "/etc/passwd"}}"#,
            r#"{"query": "sweep", "tests": {"stream": {"max_accesses": 99}}}"#,
            r#"{"query": "sweep", "tests": {"stream": {"shard": "3/2"}}}"#,
            r#"{"query": "sweep", "tests": {"stream": {"shard": 2}}}"#,
            r#"{"query": "sweep", "tests": {"stream": {"shard": "banana"}}}"#,
            r#"{"query": "sweep", "engine": {"jobs": 0}}"#,
            r#"{"query": "sweep", "engine": {"jobs": "many"}}"#,
            r#"{"query": "sweep", "checker": "oracle"}"#,
            r#"{"query": "sweep", "format": "yaml"}"#,
            r#"{"query": "compare", "left": "SC"}"#,
            r#"{"query": "compare", "left": "SC", "right": 4}"#,
            r#"{"query": "analyze", "models": 7}"#,
            r#"{"query": "analyze", "tests": {"stream": {}}}"#,
            r#"{"query": "analyze", "checker": "sat"}"#,
            r#"{"query": "check", "model": "SC"}"#,
            r#"{"query": "check", "model": "SC", "tests": {"stream": {}}}"#,
            r#"{"query": "synth", "left": "SC", "right": "TSO", "max_size": 99}"#,
            r#"{"query": "figures", "which": "fig9"}"#,
            r#"{"query": "catalog", "extra": true}"#,
        ] {
            let err = WireRequest::parse(bad).expect_err(bad);
            assert!(err.is_usage(), "`{bad}` must be a usage error, got {err}");
        }
    }

    #[test]
    fn shared_cache_is_honoured_unless_refused() {
        let cache = Arc::new(VerdictCache::new());
        let request = WireRequest::parse(
            r#"{"query": "sweep", "models": ["SC", "TSO"], "tests": "catalog",
                "engine": {"jobs": 1}}"#,
        )
        .unwrap();
        let _ = request.spec.run(Some(&cache)).unwrap();
        assert!(!cache.is_empty(), "the shared cache must be populated");
        let warm_before = cache.hits();
        let _ = request.spec.run(Some(&cache)).unwrap();
        assert!(cache.hits() > warm_before, "a re-run must hit the shared cache");

        // "cache": false opts out of the shared cache entirely.
        let refused = WireRequest::parse(
            r#"{"query": "sweep", "models": ["SC", "TSO"], "tests": "catalog",
                "cache": false, "engine": {"jobs": 1}}"#,
        )
        .unwrap();
        let len_before = cache.len();
        let hits_before = cache.hits();
        let _ = refused.spec.run(Some(&cache)).unwrap();
        assert_eq!(cache.len(), len_before);
        assert_eq!(cache.hits(), hits_before);
    }
}
