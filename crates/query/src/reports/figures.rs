//! The paper-figures report: every artifact of the paper as data.

use std::fmt::Write as _;

use mcm_core::json::Json;
use mcm_core::LitmusTest;

use crate::render::{test_json, Render};

/// Which figures a `figures` query regenerates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FigureSelection {
    /// Figure 1: Test A and its verdicts.
    Fig1,
    /// Figure 2: template samples by critical segment.
    Fig2,
    /// Figure 3: the nine contrasting tests.
    Fig3,
    /// Figure 4: the dependency-free model space.
    Fig4,
    /// §3.4 / Corollary 1 test counts.
    Counts,
    /// Everything.
    All,
}

impl FigureSelection {
    /// Resolves a CLI figure name (`fig1` … `fig4`, `counts`, `all`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<FigureSelection> {
        match name {
            "fig1" => Some(FigureSelection::Fig1),
            "fig2" => Some(FigureSelection::Fig2),
            "fig3" => Some(FigureSelection::Fig3),
            "fig4" => Some(FigureSelection::Fig4),
            "counts" => Some(FigureSelection::Counts),
            "all" => Some(FigureSelection::All),
            _ => None,
        }
    }
}

/// Figure 1 as data: Test A and its verdict under three named models.
#[derive(Clone, Debug)]
pub struct Fig1Figure {
    /// The paper's Test A.
    pub test: LitmusTest,
    /// `(model name, allowed)` verdicts, in the paper's order.
    pub verdicts: Vec<(String, bool)>,
}

/// §3.4 / Corollary 1 counts as data.
#[derive(Clone, Copy, Debug)]
pub struct CountsFigure {
    /// Corollary 1's bound with the DataDep predicate.
    pub bound_with_deps: u64,
    /// Corollary 1's bound without it.
    pub bound_without_deps: u64,
    /// Naive enumeration of the default box, raw.
    pub naive_raw: u64,
    /// Naive enumeration of the default box, canonical orbit leaders.
    pub naive_canonical: u64,
    /// Materialized template suite size with dependencies.
    pub suite_with_deps: usize,
    /// Materialized template suite size without.
    pub suite_without_deps: usize,
}

/// Figure 4 as data: the explored dependency-free space plus its DOT
/// rendering (the CLI writes [`Fig4Figure::dot`] to disk in text mode).
#[derive(Clone, Debug)]
pub struct Fig4Figure {
    /// Number of models explored (36).
    pub models: usize,
    /// Number of equivalence classes (lattice nodes).
    pub classes: usize,
    /// Number of covering edges.
    pub edges: usize,
    /// Pairs of models merged into one node, by name.
    pub merged: Vec<(String, String)>,
    /// The Graphviz rendering of the lattice.
    pub dot: String,
}

/// What a figures query produced: the requested figures, each as data.
#[derive(Clone, Debug)]
pub struct FiguresReport {
    /// Figure 1, when requested.
    pub fig1: Option<Fig1Figure>,
    /// Figure 2's template samples, when requested.
    pub fig2: Option<Vec<LitmusTest>>,
    /// Figure 3's nine tests, when requested.
    pub fig3: Option<Vec<LitmusTest>>,
    /// The §3.4 counts, when requested.
    pub counts: Option<CountsFigure>,
    /// Figure 4, when requested.
    pub fig4: Option<Fig4Figure>,
}

impl Render for FiguresReport {
    fn kind(&self) -> &'static str {
        "figures"
    }

    fn text(&self) -> String {
        let mut out = String::new();
        if let Some(fig1) = &self.fig1 {
            let _ = writeln!(out, "==== Figure 1: Test A (TSO load forwarding) ====");
            let _ = writeln!(out, "{}", fig1.test);
            for (model, allowed) in &fig1.verdicts {
                let _ = writeln!(
                    out,
                    "  {:8} {}",
                    model,
                    if *allowed { "allowed" } else { "forbidden" }
                );
            }
            out.push('\n');
        }
        if let Some(samples) = &self.fig2 {
            let _ = writeln!(
                out,
                "==== Figure 2: litmus test templates by critical segment ===="
            );
            for test in samples {
                let _ = writeln!(out, "{test}");
                let _ = writeln!(out, "  ({})\n", test.description());
            }
        }
        if let Some(nine) = &self.fig3 {
            let _ = writeln!(out, "==== Figure 3: the nine contrasting litmus tests ====");
            for test in nine {
                let _ = writeln!(out, "{test}\n");
            }
        }
        if let Some(counts) = &self.counts {
            let _ = writeln!(out, "==== §3.4 / Corollary 1: test counts ====");
            let _ = writeln!(
                out,
                "  with DataDep    : N_WW=4 N_WR=4 N_RW=6 N_RR=6  ->  {} tests",
                counts.bound_with_deps
            );
            let _ = writeln!(
                out,
                "  without DataDep : N_WW=4 N_WR=4 N_RW=4 N_RR=4  ->  {} tests",
                counts.bound_without_deps
            );
            let _ = writeln!(
                out,
                "  naive enumeration (2 threads, <=3 accesses each, no deps): \
                 {} tests raw, {} canonical",
                counts.naive_raw, counts.naive_canonical,
            );
            let _ = writeln!(
                out,
                "  materialised template suites: {} (with deps), {} (without)",
                counts.suite_with_deps, counts.suite_without_deps,
            );
            out.push('\n');
        }
        if let Some(fig4) = &self.fig4 {
            let _ = writeln!(out, "==== Figure 4: the dependency-free model space ====");
            let _ = writeln!(
                out,
                "  {} models, {} classes, {} covering edges",
                fig4.models, fig4.classes, fig4.edges,
            );
            for (a, b) in &fig4.merged {
                let _ = writeln!(out, "  merged node: {a} == {b}");
            }
        }
        out
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        let fig1 = match &self.fig1 {
            None => Json::Null,
            Some(fig1) => Json::object([
                ("test", test_json(&fig1.test)),
                (
                    "verdicts",
                    Json::array_of(&fig1.verdicts, |(model, allowed)| {
                        Json::object([
                            ("model", Json::from(model.as_str())),
                            ("allowed", Json::Bool(*allowed)),
                        ])
                    }),
                ),
            ]),
        };
        let tests_or_null = |tests: &Option<Vec<LitmusTest>>| match tests {
            None => Json::Null,
            Some(tests) => Json::array_of(tests, test_json),
        };
        let counts = match &self.counts {
            None => Json::Null,
            Some(c) => Json::object([
                ("bound_with_deps", Json::from(c.bound_with_deps)),
                ("bound_without_deps", Json::from(c.bound_without_deps)),
                ("naive_raw", Json::from(c.naive_raw)),
                ("naive_canonical", Json::from(c.naive_canonical)),
                ("suite_with_deps", Json::from(c.suite_with_deps)),
                ("suite_without_deps", Json::from(c.suite_without_deps)),
            ]),
        };
        let fig4 = match &self.fig4 {
            None => Json::Null,
            Some(fig4) => Json::object([
                ("models", Json::from(fig4.models)),
                ("classes", Json::from(fig4.classes)),
                ("edges", Json::from(fig4.edges)),
                (
                    "merged",
                    Json::array_of(&fig4.merged, |(a, b)| {
                        Json::Array(vec![Json::from(a.as_str()), Json::from(b.as_str())])
                    }),
                ),
                // Text mode writes this to figure4.dot; JSON consumers
                // get the rendering inline.
                ("dot", Json::from(fig4.dot.as_str())),
            ]),
        };
        vec![
            ("fig1".to_string(), fig1),
            ("fig2".to_string(), tests_or_null(&self.fig2)),
            ("fig3".to_string(), tests_or_null(&self.fig3)),
            ("counts".to_string(), counts),
            ("fig4".to_string(), fig4),
        ]
    }

    fn dot(&self) -> Option<String> {
        self.fig4.as_ref().map(|fig4| fig4.dot.clone())
    }
}
