//! The typed reports every query returns.
//!
//! Each report is plain data — verdict matrices, equivalence classes,
//! certificates, counters — plus a [`crate::Render`] implementation
//! producing the CLI's human-readable text, a schema-versioned JSON
//! document, and (where natural) CSV and Graphviz DOT views.

mod analyze;
mod check;
mod compare;
mod distinguish;
mod figures;
mod misc;
mod sweep;
mod synth;
mod timings;

pub use analyze::{AnalyzeFinding, AnalyzeModelEntry, AnalyzePair, AnalyzeReport};
pub use check::{CheckEntry, CheckReport};
pub use compare::{CompareReport, CompareWitness};
pub use distinguish::DistinguishReport;
pub use figures::{CountsFigure, Fig1Figure, Fig4Figure, FigureSelection, FiguresReport};
pub use misc::{CatalogReport, ParseReport, SuiteReport};
pub use sweep::{
    CacheSummary, CheckpointSummary, StoreSummary, StreamSummary, SweepReport, WarmSummary,
};
pub use synth::{SynthMatrix, SynthPair, SynthReport};
pub use timings::{
    CheckerTiming, LatencySummary, Timings, TimingsCapture, TIMINGS_SCHEMA_VERSION,
};
