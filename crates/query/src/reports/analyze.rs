//! The static-analysis report: strength lattice, normal forms and lints.

use std::fmt::Write as _;
use std::time::Duration;

use mcm_core::json::Json;

use crate::render::{duration_json, duration_text, Render};

/// What the analyzer derived about one model — all strings, so the
/// report serializes without dragging formula types across the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalyzeModelEntry {
    /// The model's name.
    pub name: String,
    /// Its must-not-reorder formula, as written.
    pub formula: String,
    /// The minimized positive-DNF drop-in.
    pub minimized: String,
    /// Hex fingerprint of the semantic key (pointwise identity).
    pub fingerprint: String,
    /// Index of the model's behavioural equivalence class.
    pub class: usize,
    /// Whether Theorem A elided an unobservable same-address `W→R`
    /// ordering from this model.
    pub elided: bool,
}

/// One statically proven equivalence between two models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalyzePair {
    /// First model (input order).
    pub left: String,
    /// Second model.
    pub right: String,
    /// How the equivalence was established: `pointwise` (equal truth
    /// tables) or `theorem-a` (equal only after sound elision).
    pub how: String,
}

/// One lint finding (model, formula or test level).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalyzeFinding {
    /// The model or test the finding is about.
    pub target: String,
    /// The stable lint code.
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

/// What an analyze query produced: the static strength lattice over the
/// model set, per-model normal forms, and the lint findings — with zero
/// litmus tests executed.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// Per-model results, in input order.
    pub models: Vec<AnalyzeModelEntry>,
    /// Equivalence classes as model indices, ordered by first member.
    pub classes: Vec<Vec<usize>>,
    /// Hasse edges `weaker → stronger` between class indices.
    pub edges: Vec<(usize, usize)>,
    /// Class indices with no weaker class (lattice bottoms).
    pub minimal_classes: Vec<usize>,
    /// Class indices with no stronger class (lattice tops).
    pub maximal_classes: Vec<usize>,
    /// All statically proven equivalent pairs.
    pub equivalent_pairs: Vec<AnalyzePair>,
    /// Lint findings over models, formulas and (optionally) tests.
    pub findings: Vec<AnalyzeFinding>,
    /// How many tests the lint pass inspected (0 when none were given).
    pub tests_linted: usize,
    /// Wall-clock of the analysis.
    pub elapsed: Duration,
}

impl AnalyzeReport {
    fn class_label(&self, class: usize) -> String {
        self.classes[class]
            .iter()
            .map(|&m| self.models[m].name.as_str())
            .collect::<Vec<_>>()
            .join("/")
    }
}

impl Render for AnalyzeReport {
    fn kind(&self) -> &'static str {
        "analyze"
    }

    fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "analyzed {} models statically in {} — 0 litmus tests executed",
            self.models.len(),
            duration_text(self.elapsed),
        );
        let _ = writeln!(
            out,
            "strength lattice: {} classes, {} covering edges, bottom {}, top {}",
            self.classes.len(),
            self.edges.len(),
            self.minimal_classes
                .iter()
                .map(|&c| self.class_label(c))
                .collect::<Vec<_>>()
                .join(", "),
            self.maximal_classes
                .iter()
                .map(|&c| self.class_label(c))
                .collect::<Vec<_>>()
                .join(", "),
        );
        let _ = writeln!(out, "equivalent pairs: {}", self.equivalent_pairs.len());
        for pair in &self.equivalent_pairs {
            let _ = writeln!(out, "  {} == {}  ({})", pair.left, pair.right, pair.how);
        }
        let elided: Vec<&str> = self
            .models
            .iter()
            .filter(|m| m.elided)
            .map(|m| m.name.as_str())
            .collect();
        if !elided.is_empty() {
            let _ = writeln!(
                out,
                "theorem-a elisions (unobservable same-address W->R ordering): {}",
                elided.join(", ")
            );
        }
        let rewritten: Vec<&AnalyzeModelEntry> = self
            .models
            .iter()
            .filter(|m| m.minimized != m.formula)
            .collect();
        if !rewritten.is_empty() {
            let _ = writeln!(out, "minimized formulas ({} differ):", rewritten.len());
            for entry in rewritten {
                let _ = writeln!(out, "  {}: {}", entry.name, entry.minimized);
            }
        }
        let _ = writeln!(
            out,
            "lints: {} findings over {} models and {} tests",
            self.findings.len(),
            self.models.len(),
            self.tests_linted,
        );
        for finding in &self.findings {
            let _ = writeln!(
                out,
                "  {} [{}]: {}",
                finding.target, finding.code, finding.message
            );
        }
        out
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        vec![
            (
                "models".to_string(),
                Json::array_of(&self.models, |m| {
                    Json::object([
                        ("name", Json::from(m.name.as_str())),
                        ("formula", Json::from(m.formula.as_str())),
                        ("minimized", Json::from(m.minimized.as_str())),
                        ("fingerprint", Json::from(m.fingerprint.as_str())),
                        ("class", Json::from(m.class)),
                        ("elided", Json::from(m.elided)),
                    ])
                }),
            ),
            (
                "classes".to_string(),
                Json::array_of(&self.classes, |class| {
                    Json::array_of(class, |&m| Json::from(self.models[m].name.as_str()))
                }),
            ),
            (
                "edges".to_string(),
                Json::array_of(&self.edges, |&(weaker, stronger)| {
                    Json::object([
                        ("weaker", Json::from(weaker)),
                        ("stronger", Json::from(stronger)),
                    ])
                }),
            ),
            (
                "equivalent_pairs".to_string(),
                Json::array_of(&self.equivalent_pairs, |p| {
                    Json::object([
                        ("left", Json::from(p.left.as_str())),
                        ("right", Json::from(p.right.as_str())),
                        ("how", Json::from(p.how.as_str())),
                    ])
                }),
            ),
            (
                "findings".to_string(),
                Json::array_of(&self.findings, |f| {
                    Json::object([
                        ("target", Json::from(f.target.as_str())),
                        ("code", Json::from(f.code.as_str())),
                        ("message", Json::from(f.message.as_str())),
                    ])
                }),
            ),
            ("tests_linted".to_string(), Json::from(self.tests_linted)),
            ("elapsed_ms".to_string(), duration_json(self.elapsed)),
        ]
    }

    fn dot(&self) -> Option<String> {
        let mut out = String::from("digraph strength {\n  rankdir=BT;\n");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        for c in 0..self.classes.len() {
            let _ = writeln!(
                out,
                "  c{c} [label=\"{}\"];",
                self.class_label(c).replace('"', "\\\"")
            );
        }
        for &(weaker, stronger) in &self.edges {
            let _ = writeln!(out, "  c{weaker} -> c{stronger};");
        }
        out.push_str("}\n");
        Some(out)
    }
}
