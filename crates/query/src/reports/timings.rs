//! The schema-versioned `timings` section: per-checker latency
//! percentiles for one query, computed as a delta of the global
//! [`mcm_obs`] registry around the run.
//!
//! The registry is process-wide and cumulative, so a query captures a
//! [`TimingsCapture`] base snapshot before it starts work and
//! subtracts it afterwards — concurrent queries may bleed into each
//! other's deltas (they share the registry), which is why the section
//! is advisory profiling data, not part of the verdict contract.

use mcm_core::json::Json;
use mcm_obs::metrics::{HistogramSnapshot, Snapshot};

/// Version stamp of the `timings` JSON sub-document. Bump when its
/// field set changes incompatibly.
pub const TIMINGS_SCHEMA_VERSION: u64 = 1;

/// Count, total and estimated percentiles of one latency series, µs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Observations recorded during the query.
    pub count: u64,
    /// Sum of all observations, µs.
    pub total_us: u64,
    /// Estimated median, µs (bucket upper bound, <= 2x overestimate).
    pub p50_us: u64,
    /// Estimated 90th percentile, µs.
    pub p90_us: u64,
    /// Estimated 99th percentile, µs.
    pub p99_us: u64,
}

impl LatencySummary {
    fn from_histogram(h: &HistogramSnapshot) -> LatencySummary {
        LatencySummary {
            count: h.count,
            total_us: h.sum,
            p50_us: h.quantile(0.50),
            p90_us: h.quantile(0.90),
            p99_us: h.quantile(0.99),
        }
    }

    fn json(&self) -> Vec<(String, Json)> {
        vec![
            ("count".to_string(), Json::from(self.count)),
            ("total_us".to_string(), Json::from(self.total_us)),
            ("p50_us".to_string(), Json::from(self.p50_us)),
            ("p90_us".to_string(), Json::from(self.p90_us)),
            ("p99_us".to_string(), Json::from(self.p99_us)),
        ]
    }
}

/// One checker's latency distribution during the query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckerTiming {
    /// The checker name (`mcm_check_latency_us`'s `checker` label).
    pub checker: String,
    /// Its latency summary.
    pub latency: LatencySummary,
}

/// The report's `timings` section: what the obs registry observed
/// while this query ran.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timings {
    /// Per-checker check-call latency, sorted by checker name.
    pub checkers: Vec<CheckerTiming>,
    /// CEGIS iteration latency (synth queries only).
    pub iterations: Option<LatencySummary>,
}

impl Timings {
    /// Extracts a `Timings` from a registry snapshot **delta** (see
    /// [`TimingsCapture`]). Zero-count series are dropped: they are
    /// other queries' stale registrations, not this run's work.
    #[must_use]
    pub fn from_delta(delta: &Snapshot) -> Timings {
        let mut checkers: Vec<CheckerTiming> = delta
            .histograms("mcm_check_latency_us")
            .into_iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(labels, h)| CheckerTiming {
                checker: labels
                    .iter()
                    .find(|(k, _)| k == "checker")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default(),
                latency: LatencySummary::from_histogram(h),
            })
            .collect();
        checkers.sort_by(|a, b| a.checker.cmp(&b.checker));
        let iterations = delta
            .histograms("mcm_synth_iteration_latency_us")
            .into_iter()
            .map(|(_, h)| h)
            .find(|h| h.count > 0)
            .map(LatencySummary::from_histogram);
        Timings {
            checkers,
            iterations,
        }
    }

    /// A fixed, deterministic sample — what golden-file tests pin the
    /// schema with, since real timings differ every run.
    #[must_use]
    pub fn sample() -> Timings {
        let sample = LatencySummary {
            count: 2,
            total_us: 300,
            p50_us: 127,
            p90_us: 255,
            p99_us: 255,
        };
        Timings {
            checkers: vec![CheckerTiming {
                checker: "explicit".to_string(),
                latency: sample,
            }],
            iterations: Some(sample),
        }
    }
}

/// JSON view of an optional `timings` section (`null` when obs was
/// disabled for the run).
pub(crate) fn timings_json(timings: &Option<Timings>) -> Json {
    let Some(timings) = timings else {
        return Json::Null;
    };
    let checkers = Json::array_of(&timings.checkers, |t| {
        let mut fields = vec![("checker".to_string(), Json::from(t.checker.as_str()))];
        fields.extend(t.latency.json());
        Json::Object(fields)
    });
    let iterations = match &timings.iterations {
        Some(latency) => Json::Object(latency.json()),
        None => Json::Null,
    };
    Json::object([
        ("schema_version", Json::from(TIMINGS_SCHEMA_VERSION)),
        ("checkers", checkers),
        ("iterations", iterations),
    ])
}

/// A base snapshot of the global registry, taken when a query starts.
///
/// [`TimingsCapture::finish`] subtracts it from a fresh snapshot to
/// yield only this run's observations. When obs is disabled at start
/// time the capture is empty and `finish` returns `None`, so reports
/// emit `"timings": null` instead of a misleading all-zero section.
#[derive(Debug)]
pub struct TimingsCapture {
    base: Option<Snapshot>,
}

impl TimingsCapture {
    /// Snapshot the global registry (no-op when obs is disabled).
    #[must_use]
    pub fn start() -> TimingsCapture {
        TimingsCapture {
            base: mcm_obs::enabled().then(|| mcm_obs::metrics::global().snapshot()),
        }
    }

    /// The observations recorded since [`TimingsCapture::start`].
    #[must_use]
    pub fn finish(self) -> Option<Timings> {
        let base = self.base?;
        let delta = mcm_obs::metrics::global().snapshot().delta_since(&base);
        Some(Timings::from_delta(&delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_delta_groups_by_checker_and_drops_idle_series() {
        let registry = mcm_obs::metrics::Registry::new();
        let base = registry.snapshot();
        registry
            .histogram("mcm_check_latency_us", &[("checker", "explicit")])
            .record(100);
        registry
            .histogram("mcm_check_latency_us", &[("checker", "sat")])
            .record(2000);
        // Registered but never recorded into: must not appear.
        let _ = registry.histogram("mcm_check_latency_us", &[("checker", "idle")]);
        registry
            .histogram("mcm_synth_iteration_latency_us", &[])
            .record(50);
        let delta = registry.snapshot().delta_since(&base);
        let timings = Timings::from_delta(&delta);
        let names: Vec<&str> = timings
            .checkers
            .iter()
            .map(|t| t.checker.as_str())
            .collect();
        assert_eq!(names, ["explicit", "sat"]);
        assert_eq!(timings.checkers[0].latency.count, 1);
        assert_eq!(timings.checkers[0].latency.total_us, 100);
        assert!(timings.checkers[0].latency.p50_us >= 100);
        assert_eq!(timings.iterations.unwrap().count, 1);
    }

    #[test]
    fn timings_json_has_versioned_envelope_and_null_when_absent() {
        assert_eq!(timings_json(&None), Json::Null);
        let doc = timings_json(&Some(Timings::sample()));
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(TIMINGS_SCHEMA_VERSION)
        );
        let checkers = doc.get("checkers").and_then(Json::as_array).unwrap();
        assert_eq!(checkers.len(), 1);
        assert_eq!(
            checkers[0].get("checker").and_then(Json::as_str),
            Some("explicit")
        );
        assert_eq!(checkers[0].get("p99_us").and_then(Json::as_u64), Some(255));
        assert!(doc.get("iterations").is_some());
    }
}
