//! The sweep report: a full models × tests exploration with lattice,
//! certificates and layer-by-layer engine counters.

use std::fmt::Write as _;
use std::time::Duration;

use mcm_core::json::Json;
use mcm_core::LitmusTest;
use mcm_explore::distinguish::MinimalSet;
use mcm_explore::dot::{render_dot, DotOptions};
use mcm_explore::{report, Exploration, Lattice, SweepStats};
use mcm_gen::StreamBounds;

use crate::render::{duration_json, duration_text, Render};

/// What a [`mcm_explore::VerdictCache`] ended up holding after a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheSummary {
    /// Entries in the cache when the query finished.
    pub entries: usize,
    /// Lookups answered from the cache, both tiers
    /// (`hits_ram + hits_disk`).
    pub hits: u64,
    /// Hits on entries computed earlier in this process (RAM tier).
    pub hits_ram: u64,
    /// Hits on entries hydrated from a durable store (disk tier) —
    /// verdicts a previous process paid for.
    pub hits_disk: u64,
    /// Lookups that fell through to a checker.
    pub misses: u64,
    /// Shard locks that were contended on insert/merge (a measure of
    /// worker convoying; same base name as `/metricsz`'s
    /// `mcm_cache_shard_contention_total`).
    pub shard_contention: u64,
}

impl std::fmt::Display for CacheSummary {
    /// The standard cache line every report prints.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cache: {} entries, {} hits ({} ram + {} disk), {} misses",
            self.entries, self.hits, self.hits_ram, self.hits_disk, self.misses,
        )
    }
}

/// What the disk-backed verdict store did during a query
/// (`--store` / `mcm serve --store-dir`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreSummary {
    /// The verdict-log path.
    pub path: String,
    /// Records replayed from the log when the cache opened.
    pub hydrated: u64,
    /// Fresh records appended during the query.
    pub appended: u64,
    /// Frames flushed (one per batch of fresh verdicts).
    pub flushes: u64,
    /// Append failures (counted, never fatal).
    pub write_errors: u64,
    /// Log size in bytes after the query.
    pub bytes: u64,
    /// Whether opening recovered from a torn/corrupt tail.
    pub recovered_tail: bool,
}

impl std::fmt::Display for StoreSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "store: {} ({} hydrated, {} appended, {} bytes)",
            self.path, self.hydrated, self.appended, self.bytes,
        )
    }
}

/// Checkpointing activity of a streamed sweep (`--checkpoint` /
/// `--resume`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// The checkpoint-file path.
    pub path: String,
    /// Checkpoints saved (one per processed chunk).
    pub saves: u64,
    /// Save failures (counted, never fatal — the sweep continues).
    pub save_errors: u64,
    /// The stream cursor this run resumed from, when it did.
    pub resumed_at: Option<u64>,
}

/// The warm re-sweep demonstration: after a cached full-space sweep, the
/// Figure 4 subspace re-checks without a single checker call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarmSummary {
    /// Wall-clock of the warm re-sweep.
    pub elapsed: Duration,
    /// Cache hits during the re-sweep.
    pub cache_hits: u64,
    /// Checker calls during the re-sweep (0 when fully warm).
    pub checker_calls: u64,
}

/// How a streamed sweep was bounded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamSummary {
    /// The enumerated box.
    pub bounds: StreamBounds,
    /// The leader-count cap, when one was requested.
    pub limit: Option<usize>,
    /// The stripe this sweep covered (`--shard i/n`), when sharded.
    pub shard: Option<mcm_gen::Shard>,
    /// Size of the raw (pre-canonicalization) space, when small enough
    /// to count by shape.
    pub raw_space: Option<u64>,
}

/// Everything a sweep query produced: the verdict matrix, the Figure-4
/// style lattice, equivalence data, the minimal distinguishing set (for
/// materialized suites) and the engine's work counters.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The models × tests verdict matrix.
    pub exploration: Exploration,
    /// Layer-by-layer engine counters.
    pub stats: SweepStats,
    /// The Hasse diagram of model classes.
    pub lattice: Lattice,
    /// Pairs of equivalent models, by name.
    pub equivalent_pairs: Vec<(String, String)>,
    /// A minimum distinguishing set with SAT minimality certificate
    /// (materialized suites only).
    pub minimal_set: Option<MinimalSet>,
    /// Indices of the paper's nine tests within the suite (empty when the
    /// suite does not contain them).
    pub nine_test_indices: Vec<usize>,
    /// Whether L1–L9 alone distinguish every non-equivalent pair
    /// (materialized suites only).
    pub nine_tests_sufficient: Option<bool>,
    /// Cache totals, when the query ran with a verdict cache.
    pub cache: Option<CacheSummary>,
    /// Disk-store activity, when the cache was backed by a verdict log.
    pub store: Option<StoreSummary>,
    /// Checkpointing activity, when a streamed sweep ran with
    /// `--checkpoint` (and possibly `--resume`).
    pub checkpoint: Option<CheckpointSummary>,
    /// The warm re-sweep demonstration, when requested and applicable.
    pub warm: Option<WarmSummary>,
    /// Stream bounds, when this was a streamed sweep.
    pub stream: Option<StreamSummary>,
    /// Per-checker latency percentiles observed during the sweep
    /// (`None` when obs was disabled). JSON-only: profiling data, not
    /// part of the human-readable story.
    pub timings: Option<crate::reports::Timings>,
    /// Wall-clock of the sweep.
    pub elapsed: Duration,
}

impl SweepReport {
    fn cache_text(&self, out: &mut String) {
        if let Some(cache) = &self.cache {
            let _ = writeln!(out, "{cache}");
        }
        if let Some(store) = &self.store {
            let _ = writeln!(out, "{store}");
        }
        if let Some(ckpt) = &self.checkpoint {
            let resumed = match ckpt.resumed_at {
                Some(cursor) => format!(", resumed at leader {cursor}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "checkpoint: {} ({} saves{resumed})",
                ckpt.path, ckpt.saves,
            );
        }
    }

    fn streamed_text(&self, stream: &StreamSummary) -> String {
        let mut out = String::new();
        let bounds = &stream.bounds;
        let raw = match stream.raw_space {
            Some(count) => format!("{count} tests"),
            None => "too many tests to even count by shape".to_string(),
        };
        let shard = match &stream.shard {
            Some(shard) => format!(", shard {shard}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "streaming leaders: <= {} accesses/thread x {} threads, {} locs{}{}{shard} \
             (raw space: {raw}, never materialized) against {} models ...",
            bounds.max_accesses_per_thread,
            bounds.threads,
            bounds.max_locs,
            if bounds.include_fences { ", fences" } else { "" },
            if bounds.include_deps { ", deps" } else { "" },
            self.exploration.models.len(),
        );
        let _ = writeln!(
            out,
            "swept {} models x {} streamed leaders in {}",
            self.exploration.models.len(),
            self.exploration.tests.len(),
            duration_text(self.elapsed),
        );
        let _ = writeln!(out, "{}", report::streaming_summary(&self.stats));
        let _ = writeln!(
            out,
            "lattice: {} equivalence classes, {} covering edges",
            self.lattice.classes.len(),
            self.lattice.edges.len(),
        );
        let _ = writeln!(out, "equivalent pairs: {}", self.equivalent_pairs.len());
        for (a, b) in self.equivalent_pairs.iter().take(12) {
            let _ = writeln!(out, "  {a} == {b}");
        }
        if self.equivalent_pairs.len() > 12 {
            let _ = writeln!(out, "  ... and {} more", self.equivalent_pairs.len() - 12);
        }
        self.cache_text(&mut out);
        out
    }

    fn materialized_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "explored {} models against {} tests in {}",
            self.exploration.models.len(),
            self.exploration.tests.len(),
            duration_text(self.elapsed),
        );
        out.push_str(&report::sweep_stats_text(&self.stats));
        if let Some(warm) = &self.warm {
            let _ = writeln!(
                out,
                "warm re-sweep of the dependency-free subspace in {}: \
                 {} cache hits, {} checker calls",
                duration_text(warm.elapsed),
                warm.cache_hits,
                warm.checker_calls,
            );
        }
        self.cache_text(&mut out);
        let _ = writeln!(out, "equivalence classes: {}", self.lattice.classes.len());
        let _ = writeln!(out, "equivalent pairs: {}", self.equivalent_pairs.len());
        for (a, b) in &self.equivalent_pairs {
            let _ = writeln!(out, "  {a} == {b}");
        }
        if let Some(minimal) = &self.minimal_set {
            let names: Vec<&str> = minimal
                .tests
                .iter()
                .map(|&t| self.exploration.tests[t].name())
                .collect();
            let _ = writeln!(
                out,
                "minimum distinguishing set: {} tests (SAT-certified: {}): {names:?}",
                minimal.tests.len(),
                minimal.proved_minimum,
            );
        }
        if let Some(sufficient) = self.nine_tests_sufficient {
            let _ = writeln!(out, "paper's L1–L9 sufficient: {sufficient}");
        }
        out
    }

    fn test_name(&self, t: usize) -> &str {
        self.exploration.tests[t].name()
    }

    /// The class members of class `c`, by model name.
    fn class_names(&self, members: &[usize]) -> Json {
        Json::array_of(members, |&m| {
            Json::from(self.exploration.models[m].name())
        })
    }
}

/// JSON view of the engine counters, nested groups included.
pub(crate) fn stats_json(stats: &SweepStats) -> Json {
    let mut fields = crate::render::counter_fields(&stats.counters());
    fields.push((
        "batch".to_string(),
        crate::render::counters_json(&stats.batch.counters()),
    ));
    fields.push((
        "sat".to_string(),
        crate::render::counters_json(&stats.sat.counters()),
    ));
    Json::Object(fields)
}

pub(crate) fn cache_json(cache: &Option<CacheSummary>) -> Json {
    match cache {
        None => Json::Null,
        Some(cache) => Json::object([
            ("entries", Json::from(cache.entries)),
            ("hits", Json::from(cache.hits)),
            ("hits_ram", Json::from(cache.hits_ram)),
            ("hits_disk", Json::from(cache.hits_disk)),
            ("misses", Json::from(cache.misses)),
            ("shard_contention", Json::from(cache.shard_contention)),
        ]),
    }
}

pub(crate) fn store_json(store: &Option<StoreSummary>) -> Json {
    match store {
        None => Json::Null,
        Some(store) => Json::object([
            ("path", Json::from(store.path.as_str())),
            ("hydrated", Json::from(store.hydrated)),
            ("appended", Json::from(store.appended)),
            ("flushes", Json::from(store.flushes)),
            ("write_errors", Json::from(store.write_errors)),
            ("bytes", Json::from(store.bytes)),
            ("recovered_tail", Json::Bool(store.recovered_tail)),
        ]),
    }
}

fn checkpoint_json(checkpoint: &Option<CheckpointSummary>) -> Json {
    match checkpoint {
        None => Json::Null,
        Some(ckpt) => Json::object([
            ("path", Json::from(ckpt.path.as_str())),
            ("saves", Json::from(ckpt.saves)),
            ("save_errors", Json::from(ckpt.save_errors)),
            ("resumed_at", Json::from(ckpt.resumed_at)),
        ]),
    }
}

pub(crate) fn tests_names_json(tests: &[LitmusTest]) -> Json {
    Json::array_of(tests, |t| Json::from(t.name()))
}

impl Render for SweepReport {
    fn kind(&self) -> &'static str {
        "sweep"
    }

    fn text(&self) -> String {
        match &self.stream {
            Some(stream) => self.streamed_text(stream),
            None => self.materialized_text(),
        }
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        let expl = &self.exploration;
        let models = Json::array_of(&expl.models, |m| Json::from(m.name()));
        let tests = tests_names_json(&expl.tests);
        let verdicts = Json::array_of(&expl.verdicts, |v| {
            Json::Array((0..v.len()).map(|t| Json::Bool(v.allowed(t))).collect())
        });
        let classes = Json::array_of(&self.lattice.classes, |c| self.class_names(&c.members));
        let edges = Json::array_of(&self.lattice.edges, |e| {
            let label = e
                .distinguishing
                .iter()
                .find(|t| self.nine_test_indices.contains(t))
                .or_else(|| e.distinguishing.first())
                .map(|&t| self.test_name(t));
            Json::object([
                ("weaker", Json::from(e.weaker)),
                ("stronger", Json::from(e.stronger)),
                ("label", Json::from(label)),
                (
                    "distinguishing_count",
                    Json::from(e.distinguishing.len()),
                ),
            ])
        });
        let minimal = match &self.minimal_set {
            None => Json::Null,
            Some(minimal) => Json::object([
                (
                    "tests",
                    Json::array_of(&minimal.tests, |&t| Json::from(self.test_name(t))),
                ),
                ("proved_minimum", Json::Bool(minimal.proved_minimum)),
            ]),
        };
        let warm = match &self.warm {
            None => Json::Null,
            Some(warm) => Json::object([
                ("elapsed_ms", duration_json(warm.elapsed)),
                ("cache_hits", Json::from(warm.cache_hits)),
                ("checker_calls", Json::from(warm.checker_calls)),
            ]),
        };
        let stream = match &self.stream {
            None => Json::Null,
            Some(stream) => Json::object([
                (
                    "max_accesses_per_thread",
                    Json::from(stream.bounds.max_accesses_per_thread),
                ),
                ("threads", Json::from(stream.bounds.threads)),
                ("max_locs", Json::from(u64::from(stream.bounds.max_locs))),
                ("include_fences", Json::Bool(stream.bounds.include_fences)),
                ("include_deps", Json::Bool(stream.bounds.include_deps)),
                ("limit", Json::from(stream.limit.map(|l| l as u64))),
                (
                    "shard",
                    match &stream.shard {
                        Some(shard) => Json::from(shard.to_string().as_str()),
                        None => Json::Null,
                    },
                ),
                ("raw_space", Json::from(stream.raw_space)),
            ]),
        };
        vec![
            ("models".to_string(), models),
            ("tests".to_string(), tests),
            ("verdicts".to_string(), verdicts),
            ("stats".to_string(), stats_json(&self.stats)),
            ("classes".to_string(), classes),
            ("edges".to_string(), edges),
            (
                "equivalent_pairs".to_string(),
                Json::array_of(&self.equivalent_pairs, |(a, b)| {
                    Json::Array(vec![Json::from(a.as_str()), Json::from(b.as_str())])
                }),
            ),
            ("minimal_set".to_string(), minimal),
            (
                "nine_tests_sufficient".to_string(),
                Json::from(self.nine_tests_sufficient),
            ),
            ("cache".to_string(), cache_json(&self.cache)),
            ("store".to_string(), store_json(&self.store)),
            ("checkpoint".to_string(), checkpoint_json(&self.checkpoint)),
            ("warm".to_string(), warm),
            ("stream".to_string(), stream),
            (
                "timings".to_string(),
                crate::reports::timings::timings_json(&self.timings),
            ),
            ("elapsed_ms".to_string(), duration_json(self.elapsed)),
        ]
    }

    fn csv(&self) -> Option<String> {
        Some(report::csv_matrix(&self.exploration))
    }

    fn dot(&self) -> Option<String> {
        Some(render_dot(
            &self.exploration,
            &self.lattice,
            &DotOptions {
                name: "models".to_string(),
                preferred_tests: self.nine_test_indices.clone(),
                ..DotOptions::default()
            },
        ))
    }
}
