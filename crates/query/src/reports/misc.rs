//! The suite, catalog and parse reports.

use std::fmt::Write as _;

use mcm_core::json::Json;
use mcm_core::LitmusTest;
use mcm_models::catalog::CatalogSection;

use crate::render::{test_json, Render};

/// What a suite query produced: the materialized Theorem 1 template
/// suite with its Corollary 1 bound.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Whether the dependency predicates were included.
    pub with_deps: bool,
    /// Corollary 1's bound for these predicates.
    pub corollary1_bound: u64,
    /// The materialized tests.
    pub tests: Vec<LitmusTest>,
    /// Print full test bodies instead of names in text mode.
    pub full: bool,
}

impl Render for SuiteReport {
    fn kind(&self) -> &'static str {
        "suite"
    }

    fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "predicates {} DataDep: Corollary 1 bound = {}, materialised = {} tests",
            if self.with_deps { "with" } else { "without" },
            self.corollary1_bound,
            self.tests.len(),
        );
        for test in &self.tests {
            if self.full {
                let _ = writeln!(out, "{test}");
            } else {
                let _ = writeln!(out, "  {}", test.name());
            }
        }
        out
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("with_deps".to_string(), Json::Bool(self.with_deps)),
            (
                "corollary1_bound".to_string(),
                Json::from(self.corollary1_bound),
            ),
            ("count".to_string(), Json::from(self.tests.len())),
            ("tests".to_string(), Json::array_of(&self.tests, test_json)),
        ]
    }
}

/// What a catalog query produced: the built-in tests grouped by
/// provenance (Figure 1, Figure 3, classics).
#[derive(Clone, Debug)]
pub struct CatalogReport {
    /// The catalog sections, in catalog order.
    pub sections: Vec<CatalogSection>,
}

impl Render for CatalogReport {
    fn kind(&self) -> &'static str {
        "catalog"
    }

    fn text(&self) -> String {
        let mut out = String::new();
        for section in &self.sections {
            for test in &section.tests {
                let _ = writeln!(out, "{test}");
                if !test.description().is_empty() {
                    let _ = writeln!(out, "  ({})\n", test.description());
                }
            }
        }
        out
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        vec![(
            "sections".to_string(),
            Json::array_of(&self.sections, |section| {
                Json::object([
                    ("name", Json::from(section.name)),
                    ("title", Json::from(section.title)),
                    (
                        "tests",
                        Json::array_of(&section.tests, test_json),
                    ),
                ])
            }),
        )]
    }
}

/// What a parse query produced: the validated tests of a `.litmus` file.
#[derive(Clone, Debug)]
pub struct ParseReport {
    /// Where the tests came from (a path, or `<inline>`).
    pub source: String,
    /// The parsed tests, pretty-printed by `text` mode.
    pub tests: Vec<LitmusTest>,
}

impl Render for ParseReport {
    fn kind(&self) -> &'static str {
        "parse"
    }

    fn text(&self) -> String {
        let mut out = String::new();
        for test in &self.tests {
            let _ = writeln!(out, "{test}");
        }
        let _ = writeln!(out, "{} test(s) parsed successfully", self.tests.len());
        out
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("source".to_string(), Json::from(self.source.as_str())),
            ("count".to_string(), Json::from(self.tests.len())),
            ("tests".to_string(), Json::array_of(&self.tests, test_json)),
        ]
    }
}
