//! The CEGIS synthesis report: per-pair minimal distinguishing lengths.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use mcm_core::json::Json;
use mcm_core::LitmusTest;
use mcm_explore::report::length_matrix_text;
use mcm_synth::{SynthBounds, SynthStats};

use crate::render::{counters_json, duration_json, duration_text, test_json, Render};

/// The answer for one synthesized model pair.
#[derive(Clone, Debug)]
pub struct SynthPair {
    /// Name of the left model.
    pub left: String,
    /// Name of the right model.
    pub right: String,
    /// Minimal distinguishing length (total accesses), `None` when the
    /// pair is UNSAT-certified indistinguishable within the bounds.
    pub length: Option<usize>,
    /// A synthesized witness of that length.
    pub witness: Option<LitmusTest>,
    /// Name of the model allowing the witness.
    pub allowed_by: Option<String>,
    /// Name of the model forbidding the witness.
    pub forbidden_by: Option<String>,
}

/// The pairwise minimal-length matrix over a model list.
#[derive(Clone, Debug)]
pub struct SynthMatrix {
    /// Model names indexing the matrix.
    pub names: Vec<String>,
    /// `lengths[i][j]`: minimal distinguishing length for models `i`,
    /// `j` (`None` on the diagonal and for indistinguishable pairs).
    pub lengths: Vec<Vec<Option<usize>>>,
}

impl SynthMatrix {
    /// `(length, pair count)` histogram plus the number of pairs not
    /// separated within bounds.
    #[must_use]
    pub fn histogram(&self) -> (BTreeMap<usize, usize>, usize) {
        let n = self.names.len();
        let mut per_length = BTreeMap::new();
        let mut unseparated = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                match self.lengths[i][j] {
                    Some(len) => *per_length.entry(len).or_insert(0) += 1,
                    None => unseparated += 1,
                }
            }
        }
        (per_length, unseparated)
    }
}

/// What a synth query produced: one pair's certified minimal length (and
/// witness), or the whole pairwise matrix.
#[derive(Clone, Debug)]
pub struct SynthReport {
    /// The bounded search box.
    pub bounds: SynthBounds,
    /// The length cap the search ran to.
    pub max_size: usize,
    /// One pair's answer (pair mode).
    pub pair: Option<SynthPair>,
    /// The pairwise matrix (matrix mode).
    pub matrix: Option<SynthMatrix>,
    /// CEGIS engine counters.
    pub stats: SynthStats,
    /// Include solver counters in the text rendering.
    pub verbose: bool,
    /// CEGIS iteration and checker latency percentiles observed during
    /// the synthesis (`None` when obs was disabled). JSON-only.
    pub timings: Option<crate::reports::Timings>,
    /// Wall-clock of the synthesis.
    pub elapsed: Duration,
}

impl SynthReport {
    fn stats_text(&self, out: &mut String) {
        let stats = &self.stats;
        let _ = writeln!(
            out,
            "cegis: {} SAT queries -> {} structures -> {} candidates, {} witnesses, \
             {} sub-spaces exhausted, {} oracle calls (+{} cached)",
            stats.sat_queries,
            stats.structures,
            stats.candidates,
            stats.witnesses,
            stats.shapes_exhausted,
            stats.oracle_calls,
            stats.oracle_cache_hits,
        );
        if self.verbose {
            let _ = writeln!(
                out,
                "solver: {} decisions, {} propagations, {} conflicts, {} restarts, \
                 {} learnt clauses retained",
                stats.solver.decisions,
                stats.solver.propagations,
                stats.solver.conflicts,
                stats.solver.restarts,
                stats.solver.learnt_clauses,
            );
            if stats.encoding_mismatches > 0 {
                let _ = writeln!(
                    out,
                    "WARNING: {} encoding/oracle mismatches (please report)",
                    stats.encoding_mismatches
                );
            }
        }
    }

    fn pair_text(&self, pair: &SynthPair, out: &mut String) {
        match (&pair.length, &pair.witness) {
            (Some(length), Some(witness)) => {
                let _ = writeln!(
                    out,
                    "minimal distinguishing length for {} vs {}: {} accesses \
                     (SAT-certified minimum, {})",
                    pair.left,
                    pair.right,
                    length,
                    duration_text(self.elapsed),
                );
                let _ = writeln!(
                    out,
                    "witness (allowed by {}, forbidden by {}):",
                    pair.allowed_by.as_deref().unwrap_or("?"),
                    pair.forbidden_by.as_deref().unwrap_or("?"),
                );
                let _ = write!(out, "{witness}");
            }
            _ => {
                let _ = writeln!(
                    out,
                    "{} and {} are indistinguishable by any test of <= {} \
                     accesses within these bounds (UNSAT-certified, {})",
                    pair.left,
                    pair.right,
                    self.max_size,
                    duration_text(self.elapsed),
                );
            }
        }
    }

    fn matrix_text(&self, matrix: &SynthMatrix, out: &mut String) {
        let _ = writeln!(
            out,
            "synthesizing the pairwise minimal-length matrix for {} models \
             (<= {} accesses/thread, {} locs{}{}, lengths <= {}) ...",
            matrix.names.len(),
            self.bounds.max_accesses_per_thread,
            self.bounds.max_locs,
            if self.bounds.include_fences { ", fences" } else { "" },
            if self.bounds.include_deps { ", deps" } else { "" },
            self.max_size,
        );
        let _ = write!(out, "{}", length_matrix_text(&matrix.names, &matrix.lengths));
        let (per_length, unseparated) = matrix.histogram();
        let histogram: Vec<String> = per_length
            .iter()
            .map(|(len, count)| format!("{count} pairs at length {len}"))
            .collect();
        let n = matrix.names.len();
        let _ = writeln!(
            out,
            "{} pairs synthesized in {}: {}; {} pairs equivalent within bounds",
            n * (n - 1) / 2,
            duration_text(self.elapsed),
            histogram.join(", "),
            unseparated,
        );
    }
}

impl Render for SynthReport {
    fn kind(&self) -> &'static str {
        "synth"
    }

    fn text(&self) -> String {
        let mut out = String::new();
        if let Some(pair) = &self.pair {
            self.pair_text(pair, &mut out);
        }
        if let Some(matrix) = &self.matrix {
            self.matrix_text(matrix, &mut out);
        }
        self.stats_text(&mut out);
        out
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        let bounds = Json::object([
            (
                "max_accesses_per_thread",
                Json::from(self.bounds.max_accesses_per_thread),
            ),
            ("threads", Json::from(self.bounds.threads)),
            ("max_locs", Json::from(u64::from(self.bounds.max_locs))),
            ("include_fences", Json::Bool(self.bounds.include_fences)),
            ("include_deps", Json::Bool(self.bounds.include_deps)),
        ]);
        let pair = match &self.pair {
            None => Json::Null,
            Some(pair) => Json::object([
                ("left", Json::from(pair.left.as_str())),
                ("right", Json::from(pair.right.as_str())),
                ("length", Json::from(pair.length.map(|l| l as u64))),
                (
                    "witness",
                    match &pair.witness {
                        Some(test) => test_json(test),
                        None => Json::Null,
                    },
                ),
                ("allowed_by", Json::from(pair.allowed_by.as_deref())),
                ("forbidden_by", Json::from(pair.forbidden_by.as_deref())),
            ]),
        };
        let matrix = match &self.matrix {
            None => Json::Null,
            Some(matrix) => {
                let (per_length, unseparated) = matrix.histogram();
                Json::object([
                    (
                        "names",
                        Json::array_of(&matrix.names, |n| Json::from(n.as_str())),
                    ),
                    (
                        "lengths",
                        Json::array_of(&matrix.lengths, |row| {
                            Json::array_of(row, |cell| Json::from(cell.map(|l| l as u64)))
                        }),
                    ),
                    (
                        "histogram",
                        Json::array_of(per_length, |(length, pairs)| {
                            Json::object([
                                ("length", Json::from(length)),
                                ("pairs", Json::from(pairs)),
                            ])
                        }),
                    ),
                    ("unseparated", Json::from(unseparated)),
                ])
            }
        };
        let mut stats = crate::render::counter_fields(&self.stats.counters());
        stats.push((
            "solver".to_string(),
            counters_json(&self.stats.solver.counters()),
        ));
        vec![
            ("bounds".to_string(), bounds),
            ("max_size".to_string(), Json::from(self.max_size)),
            ("pair".to_string(), pair),
            ("matrix".to_string(), matrix),
            ("stats".to_string(), Json::Object(stats)),
            (
                "timings".to_string(),
                crate::reports::timings::timings_json(&self.timings),
            ),
            ("elapsed_ms".to_string(), duration_json(self.elapsed)),
        ]
    }
}
