//! The two-model comparison report.

use std::fmt::Write as _;
use std::time::Duration;

use mcm_core::json::Json;
use mcm_explore::Relation;

use crate::render::{duration_json, duration_text, Render};

/// One litmus test separating the two compared models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompareWitness {
    /// The test's name.
    pub test: String,
    /// The model that allows the demanded outcome.
    pub allowed_by: String,
    /// The model that forbids it.
    pub forbidden_by: String,
}

/// What a compare query produced: the relation between two models over
/// the complete comparison suite, with every separating test.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Resolved name of the left model.
    pub left: String,
    /// Resolved name of the right model.
    pub right: String,
    /// The containment relation of the left model with respect to the
    /// right one.
    pub relation: Relation,
    /// Size of the comparison suite.
    pub tests: usize,
    /// Every test on which the two models disagree.
    pub witnesses: Vec<CompareWitness>,
    /// Wall-clock of the comparison.
    pub elapsed: Duration,
}

impl Render for CompareReport {
    fn kind(&self) -> &'static str {
        "compare"
    }

    fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} vs {}: {} is {} ({} tests, {})",
            self.left,
            self.right,
            self.left,
            self.relation,
            self.tests,
            duration_text(self.elapsed),
        );
        if self.relation != Relation::Equivalent {
            for witness in &self.witnesses {
                let _ = writeln!(
                    out,
                    "  {:44} allowed by {:8} forbidden by {}",
                    witness.test, witness.allowed_by, witness.forbidden_by,
                );
            }
        }
        out
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("left".to_string(), Json::from(self.left.as_str())),
            ("right".to_string(), Json::from(self.right.as_str())),
            (
                "relation".to_string(),
                Json::from(self.relation.to_string()),
            ),
            ("tests".to_string(), Json::from(self.tests)),
            (
                "witnesses".to_string(),
                Json::array_of(&self.witnesses, |w| {
                    Json::object([
                        ("test", Json::from(w.test.as_str())),
                        ("allowed_by", Json::from(w.allowed_by.as_str())),
                        ("forbidden_by", Json::from(w.forbidden_by.as_str())),
                    ])
                }),
            ),
            ("elapsed_ms".to_string(), duration_json(self.elapsed)),
        ]
    }
}
