//! The per-test admissibility report.

use std::fmt::Write as _;

use mcm_core::json::Json;

use crate::render::Render;

/// The verdict for one litmus test.
#[derive(Clone, Debug)]
pub struct CheckEntry {
    /// The test's name.
    pub test: String,
    /// Whether the demanded outcome is allowed under the model.
    pub allowed: bool,
    /// The rendered witness / refutation explanation, when requested.
    pub witness: Option<String>,
}

/// What a check query produced: one verdict per test of the input file,
/// each optionally explained by a witness.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The model the tests were checked under.
    pub model: String,
    /// The checker that decided admissibility.
    pub checker: &'static str,
    /// One entry per test, in input order.
    pub entries: Vec<CheckEntry>,
}

impl Render for CheckReport {
    fn kind(&self) -> &'static str {
        "check"
    }

    fn text(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let _ = writeln!(
                out,
                "{}: {} under {}",
                entry.test,
                if entry.allowed { "allowed" } else { "forbidden" },
                self.model,
            );
            if let Some(witness) = &entry.witness {
                let _ = write!(out, "{witness}");
            }
        }
        out
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("model".to_string(), Json::from(self.model.as_str())),
            ("checker".to_string(), Json::from(self.checker)),
            (
                "tests".to_string(),
                Json::array_of(&self.entries, |e| {
                    Json::object([
                        ("test", Json::from(e.test.as_str())),
                        ("allowed", Json::Bool(e.allowed)),
                        ("witness", Json::from(e.witness.as_deref())),
                    ])
                }),
            ),
        ]
    }
}
