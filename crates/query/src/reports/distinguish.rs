//! The minimum-distinguishing-set report.

use std::fmt::Write as _;
use std::time::Duration;

use mcm_core::json::Json;
use mcm_explore::distinguish::MinimalSet;
use mcm_explore::{report, Exploration, SweepStats};

use crate::render::{duration_json, duration_text, Render};
use crate::reports::sweep::{cache_json, stats_json};
use crate::reports::CacheSummary;

/// What a distinguish query produced: the sweep, its equivalence
/// classes, and a SAT-certified minimum distinguishing test set.
#[derive(Clone, Debug)]
pub struct DistinguishReport {
    /// The models × tests verdict matrix the set was computed from.
    pub exploration: Exploration,
    /// Layer-by-layer engine counters of the sweep.
    pub stats: SweepStats,
    /// The equivalence classes (model indices).
    pub classes: Vec<Vec<usize>>,
    /// The minimum distinguishing set with its minimality certificate.
    pub minimal: MinimalSet,
    /// Cache totals, when the query ran with a verdict cache.
    pub cache: Option<CacheSummary>,
    /// Wall-clock of the sweep.
    pub elapsed: Duration,
}

impl Render for DistinguishReport {
    fn kind(&self) -> &'static str {
        "distinguish"
    }

    fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "swept {} models x {} tests in {}",
            self.exploration.models.len(),
            self.exploration.tests.len(),
            duration_text(self.elapsed),
        );
        out.push_str(&report::sweep_stats_text(&self.stats));
        let _ = writeln!(out, "equivalence classes: {}", self.classes.len());
        let _ = writeln!(
            out,
            "minimum distinguishing set: {} tests (SAT-certified minimum: {})",
            self.minimal.tests.len(),
            self.minimal.proved_minimum,
        );
        for &t in &self.minimal.tests {
            let test = &self.exploration.tests[t];
            let _ = writeln!(out, "  {:44} {}", test.name(), test.description());
        }
        if let Some(cache) = &self.cache {
            let _ = writeln!(out, "{cache}");
        }
        out
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        let models = Json::array_of(&self.exploration.models, |m| Json::from(m.name()));
        let classes = Json::array_of(&self.classes, |members| {
            Json::array_of(members, |&m| {
                Json::from(self.exploration.models[m].name())
            })
        });
        let minimal = Json::object([
            (
                "tests",
                Json::array_of(&self.minimal.tests, |&t| {
                    let test = &self.exploration.tests[t];
                    Json::object([
                        ("name", Json::from(test.name())),
                        ("description", Json::from(test.description())),
                    ])
                }),
            ),
            ("proved_minimum", Json::Bool(self.minimal.proved_minimum)),
        ]);
        vec![
            ("models".to_string(), models),
            (
                "tests".to_string(),
                Json::from(self.exploration.tests.len()),
            ),
            ("stats".to_string(), stats_json(&self.stats)),
            ("classes".to_string(), classes),
            ("minimal_set".to_string(), minimal),
            ("cache".to_string(), cache_json(&self.cache)),
            ("elapsed_ms".to_string(), duration_json(self.elapsed)),
        ]
    }

    fn csv(&self) -> Option<String> {
        Some(report::csv_matrix(&self.exploration))
    }
}
