//! Model- and model-set-name resolution, shared by every query kind (and
//! by the CLI, which parses flags straight into these types).

use mcm_core::MemoryModel;
use mcm_models::{named, DigitModel};

use crate::error::QueryError;

/// Resolves a model name: the named §2.4 models (case-insensitive) or a
/// digit model `M####`.
///
/// # Errors
///
/// [`QueryError::InvalidSpec`] naming the unknown model.
pub fn model(name: &str) -> Result<MemoryModel, QueryError> {
    match name.to_ascii_lowercase().as_str() {
        "sc" => return Ok(named::sc()),
        "tso" => return Ok(named::tso()),
        "x86" => return Ok(named::x86()),
        "pso" => return Ok(named::pso()),
        "ibm370" => return Ok(named::ibm370()),
        "rmo" => return Ok(named::rmo()),
        "rmo-nodep" => return Ok(named::rmo_without_dependencies()),
        "alpha" => return Ok(named::alpha()),
        _ => {}
    }
    name.parse::<DigitModel>()
        .map(|d| d.to_model())
        .map_err(|e| {
            QueryError::InvalidSpec(format!(
                "unknown model `{name}`: {e}; try SC/TSO/x86/PSO/IBM370/RMO/Alpha or M####"
            ))
        })
}

/// Resolves a model-set specification string (the CLI's `--models`),
/// shared by `explore`, `distinguish` and `synth --matrix`:
///
/// * `figure4` (aliases `fig4`, `36`) — the 36 dependency-free digit
///   models drawn in Figure 4;
/// * `90` (aliases `full`, `all`) — the paper's full §4.2 space of 90
///   dependency-discriminating digit models;
/// * `named` — the named hardware models of §2.4;
/// * anything else — a comma-separated list of model names, each resolved
///   by [`model`] (e.g. `SC,TSO,M1032`).
///
/// # Errors
///
/// [`QueryError::InvalidSpec`] when the spec names no models or contains
/// an unknown name.
pub fn model_set(spec: &str) -> Result<Vec<MemoryModel>, QueryError> {
    ModelSpec::parse(spec).resolve()
}

/// A declarative model-space choice — one leg of a query. Holds either a
/// symbolic set name (resolved lazily, so specs can be built without
/// touching the model catalog) or an explicit list of built models.
#[derive(Clone, Debug)]
pub enum ModelSpec {
    /// The 36 dependency-free digit models of Figure 4.
    Figure4,
    /// The full §4.2 space of 90 dependency-discriminating digit models.
    Full90,
    /// The named hardware models of §2.4 (SC, TSO, x86, PSO, IBM370,
    /// RMO, RMO-nodep, Alpha).
    Named,
    /// An explicit list of model names, each resolved by [`model`].
    List(Vec<String>),
    /// Already-built models, used verbatim.
    Models(Vec<MemoryModel>),
}

impl ModelSpec {
    /// Parses a specification string: the symbolic set names of
    /// [`model_set`], or a comma-separated name list as the fallback.
    /// Never fails — unknown names surface from [`ModelSpec::resolve`].
    #[must_use]
    pub fn parse(spec: &str) -> ModelSpec {
        match spec.to_ascii_lowercase().as_str() {
            "figure4" | "fig4" | "36" => ModelSpec::Figure4,
            "90" | "full" | "all" => ModelSpec::Full90,
            "named" => ModelSpec::Named,
            _ => ModelSpec::List(
                spec.split(',')
                    .map(str::trim)
                    .filter(|name| !name.is_empty())
                    .map(str::to_string)
                    .collect(),
            ),
        }
    }

    /// Builds the model list this spec names.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidSpec`] when a listed name is unknown or the
    /// list is empty.
    pub fn resolve(&self) -> Result<Vec<MemoryModel>, QueryError> {
        match self {
            ModelSpec::Figure4 => Ok(mcm_explore::paper::digit_space_models(false)),
            ModelSpec::Full90 => Ok(mcm_explore::paper::digit_space_models(true)),
            ModelSpec::Named => Ok(named::all_named()),
            ModelSpec::List(names) => {
                let models: Vec<MemoryModel> =
                    names.iter().map(|n| model(n)).collect::<Result<_, _>>()?;
                if models.is_empty() {
                    return Err(QueryError::InvalidSpec(
                        "the model set names no models; try figure4, 90, named \
                         or a comma-separated list like SC,TSO,M1032"
                            .to_string(),
                    ));
                }
                Ok(models)
            }
            ModelSpec::Models(models) => Ok(models.clone()),
        }
    }
}

/// Whether any of `models` can observe the dependency idioms — the
/// condition under which a comparison suite should include them.
#[must_use]
pub fn models_use_dependencies(models: &[MemoryModel]) -> bool {
    models.iter().any(|m| m.formula().uses_dependencies())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_models_resolve_case_insensitively() {
        assert_eq!(model("tso").unwrap().name(), "TSO");
        assert_eq!(model("TSO").unwrap().name(), "TSO");
        assert_eq!(model("Ibm370").unwrap().name(), "IBM370");
    }

    #[test]
    fn digit_models_resolve() {
        assert_eq!(model("M4044").unwrap().name(), "M4044");
    }

    #[test]
    fn nonsense_is_an_error() {
        assert!(model("powerpc").is_err());
        assert!(model("M9999").is_err());
    }

    #[test]
    fn model_sets_resolve() {
        assert_eq!(model_set("figure4").unwrap().len(), 36);
        assert_eq!(model_set("36").unwrap().len(), 36);
        assert_eq!(model_set("90").unwrap().len(), 90);
        assert_eq!(model_set("full").unwrap().len(), 90);
        assert_eq!(model_set("named").unwrap().len(), 8);
        let listed = model_set("SC, TSO,M1032").unwrap();
        assert_eq!(listed.len(), 3);
        assert_eq!(listed[0].name(), "SC");
        assert_eq!(listed[2].name(), "M1032");
    }

    #[test]
    fn bad_model_sets_are_errors() {
        assert!(model_set("SC,powerpc").is_err());
        assert!(model_set(",, ,").is_err());
        assert!(model_set("SC,powerpc").unwrap_err().is_usage());
    }

    #[test]
    fn explicit_model_lists_pass_through() {
        let models = ModelSpec::Models(vec![named::sc()]).resolve().unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].name(), "SC");
    }

    #[test]
    fn dependency_detection_matches_the_formulas() {
        assert!(models_use_dependencies(&model_set("90").unwrap()));
        assert!(!models_use_dependencies(&model_set("figure4").unwrap()));
        assert!(models_use_dependencies(&[named::rmo()]));
        assert!(!models_use_dependencies(&[named::sc(), named::tso()]));
    }
}
