//! Where a query's litmus tests come from.

use std::path::PathBuf;

use mcm_core::parse::parse_litmus_file;
use mcm_core::LitmusTest;
use mcm_gen::{template_suite, Shard, StreamBounds};
use mcm_models::catalog;

use crate::error::QueryError;

/// A declarative test-suite choice — the second leg of a query.
///
/// Materialized sources ([`TestSource::load`]) produce a `Vec`; the
/// [`TestSource::Stream`] variant instead drives the bounded-memory
/// streaming engine, which never materializes the raw space.
#[derive(Clone, Debug)]
pub enum TestSource {
    /// The Theorem 1 template suite extended with the paper's own
    /// Figure 1 / Figure 3 tests (the §4.2 comparison suite).
    TemplateSuite {
        /// Include the data-dependency template variants.
        with_deps: bool,
    },
    /// The canonical-first streamed enumeration of a bounded space —
    /// one orbit leader per §2.3 symmetry class, never materialized.
    Stream {
        /// The bounded box to enumerate.
        bounds: StreamBounds,
        /// Stop after this many leaders (`None` = exhaust the space).
        limit: Option<usize>,
        /// Sweep only stripe `i` of `n` (`--shard i/n`); `None` sweeps
        /// the whole stream. Shards of the same bounds partition the
        /// enumeration, so N processes can split a space and their
        /// verdict logs be merged afterwards.
        shard: Option<Shard>,
    },
    /// The built-in catalog: Test A, L1–L9 and the classic tests.
    Catalog,
    /// Every test of a `.litmus` file on disk.
    File(PathBuf),
    /// Every test of an in-memory `.litmus` document.
    Inline(String),
    /// Explicitly provided tests, used verbatim.
    Tests(Vec<LitmusTest>),
}

impl TestSource {
    /// Materializes the source into a test list.
    ///
    /// # Errors
    ///
    /// [`QueryError::Io`] when a file cannot be read,
    /// [`QueryError::Parse`] when litmus source fails to parse or
    /// contains no tests, and [`QueryError::InvalidSpec`] for
    /// [`TestSource::Stream`] — streamed enumerations are consumed by the
    /// streaming sweep engine, not loaded wholesale.
    pub fn load(&self) -> Result<Vec<LitmusTest>, QueryError> {
        match self {
            TestSource::TemplateSuite { with_deps } => {
                Ok(mcm_explore::paper::comparison_tests(*with_deps))
            }
            TestSource::Stream { .. } => Err(QueryError::InvalidSpec(
                "a streamed source cannot be materialized; run it through a sweep query"
                    .to_string(),
            )),
            TestSource::Catalog => Ok(catalog::all_tests()),
            TestSource::File(path) => {
                let display = path.display().to_string();
                let text = std::fs::read_to_string(path)
                    .map_err(|e| QueryError::Io {
                        path: display.clone(),
                        message: e.to_string(),
                    })?;
                parse_named(&text, &display)
            }
            TestSource::Inline(text) => parse_named(text, "<inline>"),
            TestSource::Tests(tests) => Ok(tests.clone()),
        }
    }

    /// The bare template suite (without the catalog extension) — used by
    /// the `suite` report, which reproduces Theorem 1's construction.
    #[must_use]
    pub fn bare_template_suite(with_deps: bool) -> mcm_gen::suite::TestSuite {
        template_suite(with_deps)
    }
}

fn parse_named(text: &str, origin: &str) -> Result<Vec<LitmusTest>, QueryError> {
    let tests = parse_litmus_file(text).map_err(|e| QueryError::Parse(e.to_string()))?;
    if tests.is_empty() {
        return Err(QueryError::Parse(format!("{origin} contains no tests")));
    }
    Ok(tests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialized_sources_load() {
        assert_eq!(TestSource::Catalog.load().unwrap().len(), 15);
        // 70 materialized templates plus the 10 catalog paper tests.
        assert_eq!(
            TestSource::TemplateSuite { with_deps: false }
                .load()
                .unwrap()
                .len(),
            80
        );
        let sb = "test SB {\n thread { write X = 1; read Y -> r1 }\n \
                  thread { write Y = 1; read X -> r2 }\n \
                  outcome { T1:r1 = 0; T2:r2 = 0 }\n}\n";
        let tests = TestSource::Inline(sb.to_string()).load().unwrap();
        assert_eq!(tests.len(), 1);
        assert_eq!(tests[0].name(), "SB");
        assert_eq!(
            TestSource::Tests(tests.clone()).load().unwrap()[0].name(),
            "SB"
        );
    }

    #[test]
    fn failures_classify_correctly() {
        let missing = TestSource::File(PathBuf::from("/no/such/file.litmus"))
            .load()
            .unwrap_err();
        assert!(!missing.is_usage(), "IO failures are run failures");
        let bad = TestSource::Inline("test Bad { thread { wibble } }".to_string())
            .load()
            .unwrap_err();
        assert!(bad.to_string().contains("wibble"));
        let empty = TestSource::Inline(String::new()).load().unwrap_err();
        assert!(empty.to_string().contains("no tests"));
        let stream = TestSource::Stream {
            bounds: StreamBounds::default(),
            limit: None,
            shard: None,
        }
        .load()
        .unwrap_err();
        assert!(stream.is_usage());
    }
}
