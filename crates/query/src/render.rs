//! The [`Render`] trait: one report, four output formats.

use mcm_core::json::Json;

use crate::error::QueryError;

/// Version stamp carried by every JSON document the query layer emits.
/// Bump when a report's field set changes incompatibly; the golden-file
/// tests pin the schema at the current version.
pub const SCHEMA_VERSION: u64 = 2;

/// An output format for a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// Human-readable text — what the CLI has always printed.
    Text,
    /// A schema-versioned JSON document (see [`SCHEMA_VERSION`]).
    Json,
    /// Comma-separated values (verdict matrices); not every report has a
    /// tabular view.
    Csv,
    /// Graphviz DOT (lattices); not every report has a graph view.
    Dot,
}

impl Format {
    /// Every format, in `--format` documentation order.
    pub const ALL: [Format; 4] = [Format::Text, Format::Json, Format::Csv, Format::Dot];

    /// The stable CLI name (`text`, `json`, `csv`, `dot`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Json => "json",
            Format::Csv => "csv",
            Format::Dot => "dot",
        }
    }

    /// Resolves a (case-insensitive) name back to its format.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Format> {
        Format::ALL
            .into_iter()
            .find(|f| f.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed report that can render itself in every supported [`Format`].
///
/// `text` and `json` are total: every report has a human-readable story
/// and a machine-readable document. `csv` and `dot` are partial — only
/// reports with a natural tabular or graph view implement them — and
/// [`Render::render`] turns the gap into a [`QueryError::Unsupported`]
/// usage error.
pub trait Render {
    /// The stable document kind (`sweep`, `compare`, `distinguish`,
    /// `synth`, `check`, ...) — the `kind` field of the JSON document.
    fn kind(&self) -> &'static str;

    /// Human-readable text, newline-terminated: exactly what the CLI
    /// prints in `text` mode.
    fn text(&self) -> String;

    /// The report's own JSON fields, in documented order —
    /// [`Render::json`] prepends the envelope (`schema_version`, `kind`).
    fn json_fields(&self) -> Vec<(String, Json)>;

    /// The complete schema-versioned JSON document.
    fn json(&self) -> Json {
        let mut fields = vec![
            ("schema_version".to_string(), Json::from(SCHEMA_VERSION)),
            ("kind".to_string(), Json::from(self.kind())),
        ];
        fields.extend(self.json_fields());
        Json::Object(fields)
    }

    /// CSV view, when the report has one.
    fn csv(&self) -> Option<String> {
        None
    }

    /// Graphviz DOT view, when the report has one.
    fn dot(&self) -> Option<String> {
        None
    }

    /// Renders in `format`, newline-terminated.
    ///
    /// # Errors
    ///
    /// [`QueryError::Unsupported`] when the report has no view in the
    /// requested format.
    fn render(&self, format: Format) -> Result<String, QueryError> {
        let unsupported = || QueryError::Unsupported {
            report: self.kind(),
            format: format.name(),
        };
        match format {
            Format::Text => Ok(self.text()),
            Format::Json => Ok(self.json().pretty()),
            Format::Csv => self.csv().ok_or_else(unsupported),
            Format::Dot => self.dot().ok_or_else(unsupported),
        }
    }
}

/// Formats a wall-clock duration the way the CLI always has (`{:.2?}`).
pub(crate) fn duration_text(d: std::time::Duration) -> String {
    format!("{d:.2?}")
}

/// A duration as fractional milliseconds for JSON documents.
pub(crate) fn duration_json(d: std::time::Duration) -> Json {
    Json::Float(d.as_secs_f64() * 1000.0)
}

/// JSON view of a litmus test: its name plus its parseable `.litmus`
/// source (the pretty-printer and [`mcm_core::parse`] round-trip).
pub(crate) fn test_json(test: &mcm_core::LitmusTest) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::from(test.name())),
        ("accesses".to_string(), Json::from(test.program().access_count())),
    ];
    if !test.description().is_empty() {
        fields.push(("description".to_string(), Json::from(test.description())));
    }
    fields.push(("text".to_string(), Json::from(test.to_string())));
    Json::Object(fields)
}

/// `(name, value)` counter lists (the `counters()` structured views the
/// stats types expose) as JSON object fields — the single place counter
/// serialization happens.
pub(crate) fn counter_fields<'a>(
    counters: impl IntoIterator<Item = &'a (&'static str, u64)>,
) -> Vec<(String, Json)> {
    counters
        .into_iter()
        .map(|(name, value)| ((*name).to_string(), Json::from(*value)))
        .collect()
}

/// JSON view of a `(name, value)` counter list.
pub(crate) fn counters_json<'a>(
    counters: impl IntoIterator<Item = &'a (&'static str, u64)>,
) -> Json {
    Json::Object(counter_fields(counters))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_names_round_trip() {
        for format in Format::ALL {
            assert_eq!(Format::from_name(format.name()), Some(format));
            assert_eq!(
                Format::from_name(&format.name().to_uppercase()),
                Some(format)
            );
            assert_eq!(format.to_string(), format.name());
        }
        assert_eq!(Format::from_name("yaml"), None);
    }

    struct Dummy;
    impl Render for Dummy {
        fn kind(&self) -> &'static str {
            "dummy"
        }
        fn text(&self) -> String {
            "hello\n".to_string()
        }
        fn json_fields(&self) -> Vec<(String, Json)> {
            vec![("x".to_string(), Json::from(1u64))]
        }
    }

    #[test]
    fn json_documents_carry_the_envelope() {
        let doc = Dummy.json();
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("dummy"));
        assert_eq!(doc.get("x").and_then(Json::as_u64), Some(1));
        // The envelope comes first.
        let keys: Vec<&str> = doc
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys[..2], ["schema_version", "kind"]);
    }

    #[test]
    fn unsupported_formats_are_usage_errors() {
        assert!(Dummy.render(Format::Text).is_ok());
        assert!(Dummy.render(Format::Json).is_ok());
        let err = Dummy.render(Format::Csv).unwrap_err();
        assert!(err.is_usage());
        assert!(err.to_string().contains("dummy"));
        assert!(Dummy.render(Format::Dot).is_err());
    }
}
