//! Golden-file tests pinning the JSON schema of every report type.
//!
//! Each test builds a deterministic report (single-threaded engine,
//! explicit checker, wall-clock zeroed), renders it as JSON, and
//! compares against the checked-in document under `tests/golden/` —
//! **after round-tripping both sides through the in-tree parser**, so
//! formatting is normalized and only the data matters.
//!
//! To regenerate after an intentional schema change:
//! `MCM_BLESS=1 cargo test -p mcm-query --test golden_json`.

use std::time::Duration;

use mcm_query::{
    CheckerKind, EngineConfig, Format, ModelSpec, Query, Render, TestSource,
};
use mcm_core::json::Json;
use mcm_query::reports::FigureSelection;

const SB: &str = "test SB {\n thread { write X = 1; read Y -> r1 }\n \
                  thread { write Y = 1; read X -> r2 }\n \
                  outcome { T1:r1 = 0; T2:r2 = 0 }\n}\n";

/// Deterministic engine settings: one worker, no scheduling races in
/// any counter.
fn one_job() -> EngineConfig {
    EngineConfig {
        jobs: Some(1),
        ..EngineConfig::default()
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Renders `report` as JSON and compares it (parsed) against the golden
/// file (parsed). With `MCM_BLESS=1`, rewrites the golden instead.
fn assert_golden(name: &str, report: &dyn Render) {
    let rendered = report.render(Format::Json).expect("json renders");
    let document = Json::parse(&rendered).expect("rendered json re-parses");
    assert_eq!(
        document.get("schema_version").and_then(Json::as_u64),
        Some(mcm_query::SCHEMA_VERSION),
        "{name}: schema_version missing"
    );
    let path = golden_path(name);
    if std::env::var_os("MCM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with MCM_BLESS=1 to create", path.display())
    });
    let golden = Json::parse(&golden_text).expect("golden json parses");
    assert_eq!(
        document,
        golden,
        "{name}: schema drifted from {} — if intentional, bless with MCM_BLESS=1",
        path.display()
    );
}

#[test]
fn sweep_report_schema() {
    let mut report = Query::sweep()
        .models(ModelSpec::List(vec!["SC".into(), "TSO".into()]))
        .tests(TestSource::Catalog)
        .checker(CheckerKind::Explicit)
        .engine(one_job())
        .run()
        .unwrap();
    report.elapsed = Duration::ZERO;
    report.timings = Some(mcm_query::Timings::sample());
    assert_golden("sweep", &report);
}

#[test]
fn streamed_sweep_report_schema() {
    let mut report = Query::sweep()
        .models(ModelSpec::List(vec!["SC".into(), "TSO".into()]))
        .tests(TestSource::Stream {
            bounds: mcm_query::StreamBounds {
                max_accesses_per_thread: 2,
                threads: 2,
                max_locs: 2,
                include_fences: false,
                include_deps: false,
            },
            limit: Some(40),
            shard: None,
        })
        .engine(one_job())
        .run()
        .unwrap();
    report.elapsed = Duration::ZERO;
    report.timings = Some(mcm_query::Timings::sample());
    assert_golden("sweep_stream", &report);
}

#[test]
fn compare_report_schema() {
    let mut report = Query::compare("TSO", "IBM370").run().unwrap();
    report.elapsed = Duration::ZERO;
    assert_golden("compare", &report);
}

#[test]
fn distinguish_report_schema() {
    let mut report = Query::distinguish()
        .models(ModelSpec::List(vec![
            "SC".into(),
            "TSO".into(),
            "PSO".into(),
        ]))
        .with_deps(false)
        .engine(one_job())
        .run()
        .unwrap();
    report.elapsed = Duration::ZERO;
    assert_golden("distinguish", &report);
}

#[test]
fn analyze_report_schema() {
    let mut report = Query::analyze()
        .models(ModelSpec::List(vec![
            "SC".into(),
            "TSO".into(),
            "IBM370".into(),
            "M4040".into(),
            "M4140".into(),
        ]))
        .tests(TestSource::Inline(SB.to_string()))
        .run()
        .unwrap();
    report.elapsed = Duration::ZERO;
    assert_golden("analyze", &report);
}

#[test]
fn synth_report_schema() {
    let mut report = Query::synth("SC", "TSO").verbose(true).run().unwrap();
    report.elapsed = Duration::ZERO;
    report.timings = Some(mcm_query::Timings::sample());
    assert_golden("synth", &report);
}

#[test]
fn check_report_schema() {
    let report = Query::check("SC", TestSource::Inline(SB.to_string()))
        .witness(true)
        .run()
        .unwrap();
    assert_golden("check", &report);
}

#[test]
fn suite_report_schema() {
    let report = Query::suite(false).run();
    assert_golden("suite", &report);
}

#[test]
fn catalog_report_schema() {
    assert_golden("catalog", &Query::catalog());
}

#[test]
fn parse_report_schema() {
    let report = mcm_query::ParseReport {
        source: "<inline>".to_string(),
        tests: TestSource::Inline(SB.to_string()).load().unwrap(),
    };
    assert_golden("parse", &report);
}

#[test]
fn figures_counts_report_schema() {
    assert_golden("figures_counts", &Query::figures(FigureSelection::Counts));
}

#[test]
fn figures_fig1_report_schema() {
    assert_golden("figures_fig1", &Query::figures(FigureSelection::Fig1));
}
