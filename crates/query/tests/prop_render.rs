//! Property: `Render::json` output always re-parses through the in-tree
//! JSON parser, to an equal document, for every report type — over
//! randomly sampled model pairs, checker backends and test sources.

use mcm_core::json::Json;
use mcm_query::{
    CheckerKind, EngineConfig, Format, ModelSpec, Query, Render, TestSource,
};
use proptest::prelude::*;

/// A pool of model names spanning named models and digit models.
const MODEL_POOL: [&str; 8] = [
    "SC", "TSO", "PSO", "IBM370", "RMO", "Alpha", "M1011", "M4044",
];

/// The report's JSON must re-parse, carry the envelope, and the
/// re-parsed document must equal a second round trip (emitter and
/// parser are mutual inverses on report output).
fn assert_json_roundtrips(report: &dyn Render) -> Result<(), TestCaseError> {
    let rendered = report.render(Format::Json).expect("json is total");
    let parsed = Json::parse(&rendered)
        .map_err(|e| TestCaseError::fail(format!("json failed to re-parse: {e}\n{rendered}")))?;
    prop_assert_eq!(
        parsed.get("schema_version").and_then(Json::as_u64),
        Some(mcm_query::SCHEMA_VERSION)
    );
    prop_assert_eq!(
        parsed.get("kind").and_then(Json::as_str),
        Some(report.kind())
    );
    // Second round trip: emit the parsed document and parse again.
    let re_rendered = parsed.pretty();
    let re_parsed = Json::parse(&re_rendered)
        .map_err(|e| TestCaseError::fail(format!("second round trip failed: {e}")))?;
    prop_assert_eq!(re_parsed, parsed);
    // Text is total too.
    prop_assert!(!report.text().is_empty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compare_reports_roundtrip(left in 0usize..8, right in 0usize..8) {
        let report = Query::compare(MODEL_POOL[left], MODEL_POOL[right % 8])
            .run()
            .unwrap();
        assert_json_roundtrips(&report)?;
    }

    #[test]
    fn check_reports_roundtrip(model in 0usize..8, witness in proptest::bool::ANY) {
        let sb = "test SB {\n thread { write X = 1; read Y -> r1 }\n \
                  thread { write Y = 1; read X -> r2 }\n \
                  outcome { T1:r1 = 0; T2:r2 = 0 }\n}\n";
        let report = Query::check(MODEL_POOL[model], TestSource::Inline(sb.to_string()))
            .witness(witness)
            .run()
            .unwrap();
        assert_json_roundtrips(&report)?;
    }

    #[test]
    fn sweep_reports_roundtrip(left in 0usize..8, right in 0usize..8, checker in 0usize..3) {
        let report = Query::sweep()
            .models(ModelSpec::List(vec![
                MODEL_POOL[left].to_string(),
                MODEL_POOL[right].to_string(),
            ]))
            .tests(TestSource::Catalog)
            .checker(CheckerKind::ALL[checker])
            .engine(EngineConfig { jobs: Some(1), ..EngineConfig::default() })
            .cache(left % 2 == 0)
            .run()
            .unwrap();
        assert_json_roundtrips(&report)?;
    }

    #[test]
    fn distinguish_reports_roundtrip(a in 0usize..8, b in 0usize..8, c in 0usize..8) {
        let report = Query::distinguish()
            .models(ModelSpec::List(vec![
                MODEL_POOL[a].to_string(),
                MODEL_POOL[b].to_string(),
                MODEL_POOL[c].to_string(),
            ]))
            .with_deps(false)
            .engine(EngineConfig { jobs: Some(1), ..EngineConfig::default() })
            .run()
            .unwrap();
        assert_json_roundtrips(&report)?;
    }

    #[test]
    fn synth_reports_roundtrip(left in 0usize..6, right in 0usize..6) {
        // Restrict to the cheap named models and a tiny box so the
        // CEGIS loop stays fast under many cases.
        let report = Query::synth(MODEL_POOL[left], MODEL_POOL[right])
            .bounds(mcm_query::SynthBounds {
                max_accesses_per_thread: 2,
                max_locs: 2,
                ..mcm_query::SynthBounds::default()
            })
            .run()
            .unwrap();
        assert_json_roundtrips(&report)?;
    }

    #[test]
    fn streamed_sweep_reports_roundtrip(limit in 1usize..60) {
        let report = Query::sweep()
            .models(ModelSpec::List(vec!["SC".to_string(), "RMO".to_string()]))
            .tests(TestSource::Stream {
                bounds: mcm_query::StreamBounds {
                    max_accesses_per_thread: 2,
                    threads: 2,
                    max_locs: 2,
                    include_fences: false,
                    include_deps: false,
                },
                limit: Some(limit),
                shard: None,
            })
            .engine(EngineConfig { jobs: Some(1), ..EngineConfig::default() })
            .run()
            .unwrap();
        assert_json_roundtrips(&report)?;
    }
}

#[test]
fn static_reports_roundtrip() {
    for report in [
        &Query::catalog() as &dyn Render,
        &Query::suite(true).run(),
        &Query::suite(false).full(true).run(),
    ] {
        assert_json_roundtrips(report).unwrap();
    }
}
