//! # litmus-mcm
//!
//! A reproduction of *"Litmus Tests for Comparing Memory Consistency Models:
//! How Long Do They Need to Be?"* (Mador-Haim, Alur, Martin — DAC 2011).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — litmus programs, instruction executions, predicates and the
//!   *must-not-reorder* formula DSL (paper §2.1–2.3).
//! * [`axiomatic`] — the happens-before semantics and three independent
//!   admissibility checkers (paper §2.2, §4.1).
//! * [`models`] — named hardware models (SC, TSO, PSO, RMO, IBM370, …), the
//!   90-model digit space `M{ww}{wr}{rw}{rr}`, and the L1–L9 test catalog
//!   (paper §2.4, §4.2, Figures 1 and 3).
//! * [`gen`] — local segments, the seven litmus-test templates of Theorem 1,
//!   Corollary 1 counting, and the naive enumeration baseline (paper §3).
//! * [`explore`] — model comparison, equivalence, the Figure 4 lattice, and
//!   minimal distinguishing test sets (paper §4.2).
//! * [`analyze`] — static semantic analysis of the formulas themselves:
//!   feasible-valuation truth tables, the static strength lattice (the
//!   paper's 8 equivalent pairs with zero tests executed), minimized
//!   normal forms, the sweep prefilter, and the lint pass (extension).
//! * [`sat`] — the CDCL SAT solver used as the admissibility oracle
//!   (substitute for MiniSat, paper §4.1).
//! * [`synth`] — CEGIS-based symbolic synthesis of minimal distinguishing
//!   litmus tests: the dual of enumerate-then-check (extension).
//! * [`query`] — the unified query API: declarative model/test/checker
//!   composition returning typed, serializable reports (text, JSON, CSV,
//!   DOT) — the library face the `mcm` CLI is a thin renderer over.
//! * [`serve`] — the query API as a long-lived HTTP service: shared warm
//!   verdict cache, bounded-queue backpressure, graceful shutdown
//!   (`mcm serve`).
//! * [`store`] — disk persistence: the append-only verdict log under the
//!   RAM cache (`--store`, `mcm serve --store-dir`), checkpoint/resume
//!   for streaming sweeps (`--checkpoint` / `--resume`), and shard-log
//!   merging (extension).
//! * [`operational`] — interleaving-SC and store-buffer-TSO reference
//!   machines that cross-validate the axiomatic semantics (extension).
//! * [`obs`] — zero-dependency observability: the global metrics
//!   registry (counters, gauges, log-scale latency histograms), span
//!   tracing with a Chrome `trace_event` sink (`--trace-out`), and the
//!   Prometheus text exposition behind `GET /metricsz` (extension).
//!
//! ## Quickstart
//!
//! Check the paper's Figure 1 test against TSO and SC:
//!
//! ```
//! use litmus_mcm::axiomatic::{Checker, ExplicitChecker};
//! use litmus_mcm::models::{catalog, named};
//!
//! let test = catalog::test_a();
//! let checker = ExplicitChecker::new();
//! assert!(checker.is_allowed(&named::tso(), &test));
//! assert!(!checker.is_allowed(&named::sc(), &test));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mcm_analyze as analyze;
pub use mcm_axiomatic as axiomatic;
pub use mcm_core as core;
pub use mcm_explore as explore;
pub use mcm_gen as gen;
pub use mcm_models as models;
pub use mcm_obs as obs;
pub use mcm_operational as operational;
pub use mcm_query as query;
pub use mcm_sat as sat;
pub use mcm_serve as serve;
pub use mcm_store as store;
pub use mcm_synth as synth;

/// Crate version, re-exported for tooling.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
