//! How long do litmus tests need to be? — asked empirically, one step
//! past Theorem 1, with the streaming canonical-first enumeration.
//!
//! Sweeps the Figure 4 model space (the 36 dependency-free digit models)
//! with streamed orbit leaders of growing length — three accesses per
//! thread (the Theorem 1 bound), then four, both with fences and the
//! paper's `r - r + k` dependency idiom enabled — and reports whether any
//! model pair that three-access tests consider equivalent is split by the
//! longer tests. Theorem 1 predicts none, and the sweep corroborates it
//! without ever materializing a raw space that, at size 4, no longer fits
//! in memory at all.
//!
//! Run with: `cargo run --release --example stream_timing`

use std::time::Instant;

use mcm_axiomatic::ExplicitChecker;
use mcm_explore::{paper, report, EngineConfig, Exploration, Relation};
use mcm_gen::stream::{self, StreamBounds};
use mcm_gen::naive;

fn sweep(bounds: &StreamBounds, limit: usize) -> (Exploration, mcm_explore::SweepStats) {
    Exploration::run_engine_streaming(
        paper::digit_space_models(false),
        stream::leaders(bounds).take(limit),
        || Box::new(ExplicitChecker::new()),
        &EngineConfig::default(),
        None,
    )
}

fn main() {
    let defaults = naive::NaiveBounds::default();
    let start = Instant::now();
    let leaders = naive::count_tests(&defaults);
    println!(
        "Theorem 1 box (3 accesses, 4 locations): {} raw tests -> {} orbit leaders, counted in {:.2?}",
        naive::count_tests_raw(&defaults),
        leaders,
        start.elapsed(),
    );

    // Past Theorem 1 the raw space stops being countable by enumeration,
    // let alone storable; the stream does not care.
    let size4 = StreamBounds::size4(2);
    match stream::try_count_raw(&size4, 10_000_000) {
        Some(raw) => println!("size-4 box (2 locations, fences, deps): {raw} raw tests"),
        None => println!("size-4 box (2 locations, fences, deps): raw size impractical to count"),
    }

    let limit = 20_000;
    let size3 = StreamBounds {
        max_accesses_per_thread: 3,
        max_locs: 2,
        include_fences: true,
        include_deps: true,
        ..StreamBounds::default()
    };
    let start = Instant::now();
    let (three, stats3) = sweep(&size3, limit);
    println!("\nsize-3 sweep ({:.2?}): {}", start.elapsed(), report::streaming_summary(&stats3));
    let start = Instant::now();
    let (four, stats4) = sweep(&size4, limit);
    println!("size-4 sweep ({:.2?}): {}", start.elapsed(), report::streaming_summary(&stats4));

    let pairs = three.equivalent_pairs();
    let split = pairs
        .iter()
        .filter(|&&(i, j)| four.relation(i, j) != Relation::Equivalent)
        .count();
    println!(
        "\nHow long do litmus tests need to be? {split} of {} size-3-equivalent model pairs \
         were split by four-access tests (Theorem 1 predicts 0 over the complete space).",
        pairs.len(),
    );
}
