//! Prints Figure 3 — the nine contrasting litmus tests L1–L9 — and the
//! verdict of every named hardware model on each, reproducing the
//! correspondence between tests and reordering choices described in §4.2.
//!
//! Run with `cargo run --example nine_tests`.

use litmus_mcm::axiomatic::{Checker, ExplicitChecker};
use litmus_mcm::models::{catalog, named};

fn main() {
    let models = vec![
        named::sc(),
        named::ibm370(),
        named::tso(),
        named::pso(),
        named::rmo(),
        named::alpha(),
        named::rmo_without_dependencies(),
    ];
    let checker = ExplicitChecker::new();

    for test in catalog::nine_tests() {
        println!("{test}");
        println!("  probes: {}", test.description());
        for model in &models {
            let verdict = checker.check(model, &test);
            println!("    {:10} {}", model.name(), verdict);
        }
        println!();
    }

    // The verdict matrix as a compact table.
    println!("{:8}", "test");
    print!("{:8}", "");
    for model in &models {
        print!("{:>10}", model.name());
    }
    println!();
    for test in catalog::nine_tests() {
        print!("{:8}", test.name());
        for model in &models {
            let allowed = checker.is_allowed(model, &test);
            print!("{:>10}", if allowed { "allowed" } else { "-" });
        }
        println!();
    }
}
