//! Prints the measured quantities recorded in EXPERIMENTS.md: naive
//! enumeration sizes, Corollary 1 breakdowns, and exploration timings.
//!
//! Run with `cargo run --release --example gather_numbers`.

use std::time::Instant;

use litmus_mcm::axiomatic::{ExplicitChecker, SatChecker};
use litmus_mcm::explore::{paper, Exploration};
use litmus_mcm::gen::count;
use litmus_mcm::gen::naive::{count_tests, count_tests_raw, NaiveBounds};

fn main() {
    let bounds = NaiveBounds::default();
    let with_fences = NaiveBounds {
        include_fences: true,
        ..NaiveBounds::default()
    };
    println!("naive raw (no fences): {}", count_tests_raw(&bounds));
    println!("naive canonical (no fences): {}", count_tests(&bounds));
    println!("naive raw (with fences): {}", count_tests_raw(&with_fences));
    println!("per-case bounds with deps: {:?}", count::per_case_bounds(true));
    println!("per-case bounds no deps: {:?}", count::per_case_bounds(false));
    println!(
        "extended bound (DataDep + ControlDep): {}",
        count::extended_bound(true, true)
    );

    let models = paper::digit_space_models(true);
    let tests = paper::comparison_tests(true);
    let start = Instant::now();
    let expl = Exploration::run(models, tests, &ExplicitChecker::new());
    println!(
        "sequential 90-model exploration: {:.2?} ({} classes)",
        start.elapsed(),
        expl.equivalence_classes().len()
    );

    let start = Instant::now();
    let pair = Exploration::run(
        vec![
            litmus_mcm::models::named::tso(),
            litmus_mcm::models::named::ibm370(),
        ],
        paper::comparison_tests(true),
        &SatChecker::new(),
    );
    println!(
        "single pair via SAT checker: {:.2?} (relation: {})",
        start.elapsed(),
        pair.relation(0, 1)
    );
}
