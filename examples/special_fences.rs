//! §3.3: how long must the *local segments* be? This example builds the
//! paper's hypothetical model family with `n` special fence flavours and
//! shows that the contrasting litmus test needs a local segment of `n + 2`
//! instructions — the Theorem 1 bound covers memory accesses, but the
//! non-memory instruction count depends on the predicate set.
//!
//! Run with `cargo run --example special_fences`.

use litmus_mcm::axiomatic::{Checker, ExplicitChecker};
use litmus_mcm::gen::local;

fn main() {
    let checker = ExplicitChecker::new();
    for n in 1..=4u8 {
        let (f1, f2) = local::special_chain_models(n);
        println!("=== n = {n} ===");
        println!("{f1}");
        println!("{f2}");
        println!(
            "local segment bound from equivalence classes: {} instructions",
            local::local_segment_bound(f1.formula())
        );

        let full = local::special_chain_contrast_test(n);
        let f1_full = checker.is_allowed(&f1, &full);
        let f2_full = checker.is_allowed(&f2, &full);
        println!(
            "full chain ({} instructions per thread): F1 {}, F2 {} => {}",
            n + 2,
            if f1_full { "allows" } else { "forbids" },
            if f2_full { "allows" } else { "forbids" },
            if f1_full != f2_full { "CONTRASTS" } else { "agrees" },
        );

        for omit in 1..=n {
            let flavours: Vec<u8> = (1..=n).filter(|&f| f != omit).collect();
            let test = local::special_chain_test(n, &flavours);
            let a = checker.is_allowed(&f1, &test);
            let b = checker.is_allowed(&f2, &test);
            println!(
                "chain without f{omit}: F1 {}, F2 {} => {}",
                if a { "allows" } else { "forbids" },
                if b { "allows" } else { "forbids" },
                if a != b { "contrasts (!)" } else { "agrees (as §3.3 predicts)" },
            );
        }
        println!();
    }
}
