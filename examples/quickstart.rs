//! Quickstart: define a memory model, write a litmus test, check whether
//! the outcome is allowed — reproducing Figure 1 of the paper along the
//! way.
//!
//! Run with `cargo run --example quickstart`.

use litmus_mcm::axiomatic::{Checker, ExplicitChecker, SatChecker};
use litmus_mcm::core::{
    Formula, LitmusTest, Loc, MemoryModel, Outcome, Program, Reg, ThreadId, Value,
};
use litmus_mcm::models::{catalog, named};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- 1. The paper's Figure 1: Test A under TSO and SC ------------
    let test_a = catalog::test_a();
    println!("{test_a}");

    let checker = ExplicitChecker::new();
    for model in [named::tso(), named::sc(), named::ibm370()] {
        let verdict = checker.check(&model, &test_a);
        println!("under {:8} the outcome is {}", model.name(), verdict);
    }
    // TSO allows it (load forwarding lets T2 read its own W Y=2 early);
    // SC and IBM370 forbid it.

    // ----- 2. Build your own test and model ----------------------------
    // Store buffering by hand:
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .read(Loc::Y, Reg(1))
        .thread()
        .write(Loc::Y, Value(1))
        .read(Loc::X, Reg(2))
        .build()?;
    let outcome = Outcome::new()
        .constrain(ThreadId(0), Reg(1), Value(0))
        .constrain(ThreadId(1), Reg(2), Value(0));
    let sb = LitmusTest::new("SB", program, outcome)?;

    // A custom model: "keep everything ordered except write→read pairs"
    // (that is exactly TSO, written as a must-not-reorder function).
    let my_model = MemoryModel::new(
        "my-tso",
        Formula::or([
            Formula::and([
                Formula::atom(litmus_mcm::core::Atom::IsWrite(litmus_mcm::core::ArgPos::First)),
                Formula::atom(litmus_mcm::core::Atom::IsWrite(litmus_mcm::core::ArgPos::Second)),
            ]),
            Formula::atom(litmus_mcm::core::Atom::IsRead(litmus_mcm::core::ArgPos::First)),
            Formula::fence_either(),
        ]),
    );
    println!("\n{sb}");
    println!("under {} the outcome is {}", my_model.name(), checker.check(&my_model, &sb));

    // ----- 3. The SAT checker agrees (the paper's tool architecture) ---
    let sat = SatChecker::new();
    assert_eq!(
        sat.is_allowed(&my_model, &sb),
        checker.is_allowed(&my_model, &sb)
    );
    println!("\nSAT checker and explicit checker agree.");

    // ----- 4. Inspect the happens-before witness ------------------------
    let verdict = checker.check(&named::tso(), &test_a);
    if let Some(witness) = verdict.witness {
        println!("\nWitness for Test A under TSO (forced happens-before edges):");
        for (from, to, kind) in witness.hb_edges {
            let exec = test_a.execution();
            println!("  {} --{kind}--> {}", exec.event(from), exec.event(to));
        }
    }
    Ok(())
}
