//! Reproduces the paper's §4.2 exploration: compares all 90 digit models
//! (and the 36 dependency-free ones of Figure 4), reporting equivalent
//! pairs, the minimum distinguishing test set, and the Figure 4 lattice as
//! Graphviz DOT (written to `figure4.dot` in the working directory).
//!
//! Run with `cargo run --release --example explore_space`.

use std::time::Instant;

use litmus_mcm::explore::dot::{render_dot, DotOptions};
use litmus_mcm::explore::paper;

fn main() {
    // ----- the 90-model space (with dependency predicates) -------------
    let start = Instant::now();
    let report = paper::explore_digit_space(true);
    let elapsed = start.elapsed();
    println!("=== 90-model space (predicates incl. DataDep) ===");
    println!(
        "models: {}   tests: {}   wall-clock: {:.2?}",
        report.exploration.models.len(),
        report.exploration.tests.len(),
        elapsed
    );
    println!(
        "equivalence classes: {}",
        report.exploration.equivalence_classes().len()
    );
    println!("equivalent pairs: {}", report.equivalent_pairs.len());
    for (a, b) in &report.equivalent_pairs {
        println!("  {a} == {b}");
    }
    let names: Vec<&str> = report
        .minimal_set
        .tests
        .iter()
        .map(|&t| report.exploration.tests[t].name())
        .collect();
    println!(
        "minimum distinguishing set ({} tests, SAT-certified minimum: {}): {:?}",
        report.minimal_set.tests.len(),
        report.minimal_set.proved_minimum,
        names
    );
    println!(
        "paper's nine tests L1–L9 sufficient: {}",
        report.nine_tests_sufficient
    );

    // ----- the 36-model dependency-free space (Figure 4) ---------------
    let start = Instant::now();
    let nodep = paper::explore_digit_space(false);
    let elapsed = start.elapsed();
    println!("\n=== 36-model dependency-free space (Figure 4) ===");
    println!(
        "models: {}   tests: {}   wall-clock: {:.2?}",
        nodep.exploration.models.len(),
        nodep.exploration.tests.len(),
        elapsed
    );
    println!(
        "equivalence classes (Figure 4 nodes): {}",
        nodep.lattice.classes.len()
    );
    println!("covering edges: {}", nodep.lattice.edges.len());
    println!("equivalent pairs: {}", nodep.equivalent_pairs.len());
    for (a, b) in &nodep.equivalent_pairs {
        println!("  {a} == {b}");
    }

    let dot = render_dot(
        &nodep.exploration,
        &nodep.lattice,
        &DotOptions {
            name: "figure4".to_string(),
            preferred_tests: nodep.nine_test_indices.clone(),
            ..DotOptions::default()
        },
    );
    std::fs::write("figure4.dot", &dot).expect("write figure4.dot");
    println!("wrote figure4.dot ({} bytes)", dot.len());
}
