//! Reproduces the paper's §4.2 exploration through the unified query
//! API: one declarative [`Query`] per space, typed reports back, and the
//! same data rendered as text, JSON and Graphviz DOT (written to
//! `figure4.dot` in the working directory).
//!
//! Run with `cargo run --release --example explore_space`.

use litmus_mcm::query::{Format, ModelSpec, Query, Render, TestSource};

fn main() {
    // ----- the 90-model space (with dependency predicates) -------------
    let report = Query::sweep()
        .models(ModelSpec::Full90)
        .tests(TestSource::TemplateSuite { with_deps: true })
        .run()
        .expect("the digit space resolves");
    println!("=== 90-model space (predicates incl. DataDep) ===");
    // The typed report carries everything §4.2 reports ...
    println!(
        "models: {}   tests: {}   wall-clock: {:.2?}",
        report.exploration.models.len(),
        report.exploration.tests.len(),
        report.elapsed,
    );
    println!("equivalence classes: {}", report.lattice.classes.len());
    println!("equivalent pairs: {}", report.equivalent_pairs.len());
    for (a, b) in &report.equivalent_pairs {
        println!("  {a} == {b}");
    }
    let minimal = report.minimal_set.as_ref().expect("materialized sweep");
    let names: Vec<&str> = minimal
        .tests
        .iter()
        .map(|&t| report.exploration.tests[t].name())
        .collect();
    println!(
        "minimum distinguishing set ({} tests, SAT-certified minimum: {}): {:?}",
        minimal.tests.len(),
        minimal.proved_minimum,
        names
    );
    println!(
        "paper's nine tests L1–L9 sufficient: {}",
        report.nine_tests_sufficient.unwrap_or(false)
    );

    // ... and doubles as a machine-readable document: the same report,
    // serialized and round-tripped through the in-tree JSON parser.
    let json = report.render(Format::Json).expect("json is total");
    let doc = litmus_mcm::core::json::Json::parse(&json).expect("round-trips");
    println!(
        "as JSON: {} bytes, kind={}, schema_version={}",
        json.len(),
        doc.get("kind").and_then(|k| k.as_str()).unwrap(),
        doc.get("schema_version").and_then(|v| v.as_u64()).unwrap(),
    );

    // ----- the 36-model dependency-free space (Figure 4) ---------------
    let nodep = Query::sweep()
        .models(ModelSpec::Figure4)
        .tests(TestSource::TemplateSuite { with_deps: false })
        .run()
        .expect("the Figure 4 space resolves");
    println!("\n=== 36-model dependency-free space (Figure 4) ===");
    println!(
        "models: {}   tests: {}   wall-clock: {:.2?}",
        nodep.exploration.models.len(),
        nodep.exploration.tests.len(),
        nodep.elapsed,
    );
    println!(
        "equivalence classes (Figure 4 nodes): {}",
        nodep.lattice.classes.len()
    );
    println!("covering edges: {}", nodep.lattice.edges.len());
    println!("equivalent pairs: {}", nodep.equivalent_pairs.len());
    for (a, b) in &nodep.equivalent_pairs {
        println!("  {a} == {b}");
    }

    // Reports with a graph view render DOT directly.
    let dot = nodep.dot().expect("sweep reports have a graph view");
    std::fs::write("figure4.dot", &dot).expect("write figure4.dot");
    println!("wrote figure4.dot ({} bytes)", dot.len());
}
