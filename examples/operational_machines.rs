//! Runs the four operational reference machines (interleaving SC,
//! store-buffer TSO, no-forwarding IBM370, per-location-buffer PSO) over
//! the paper's litmus catalog, next to the axiomatic verdicts — the two
//! semantics agree test-for-test.
//!
//! Run with `cargo run --release --example operational_machines`.

use litmus_mcm::axiomatic::{Checker, ExplicitChecker};
use litmus_mcm::models::{catalog, named};
use litmus_mcm::operational::{ibm370_allows, pso_allows, sc_allows, tso_allows};

fn main() {
    let checker = ExplicitChecker::new();
    let axiomatic = [named::sc(), named::tso(), named::ibm370(), named::pso()];

    println!(
        "{:12} {:>14} {:>14} {:>14} {:>14}",
        "test", "SC op/ax", "TSO op/ax", "IBM370 op/ax", "PSO op/ax"
    );
    for test in catalog::all_tests() {
        let operational = [
            sc_allows(&test),
            tso_allows(&test),
            ibm370_allows(&test),
            pso_allows(&test),
        ];
        let mut row = format!("{:12}", test.name());
        for (machine, model) in operational.iter().zip(&axiomatic) {
            let ax = checker.is_allowed(model, &test);
            let mark = |b: bool| if b { "Y" } else { "n" };
            row.push_str(&format!(
                "{:>13}{}",
                format!("{}/{}", mark(*machine), mark(ax)),
                if *machine == ax { ' ' } else { '!' }
            ));
        }
        println!("{row}");
    }
    println!("\n(Y = outcome reachable/allowed, n = not; `!` would flag a mismatch.)");
}
