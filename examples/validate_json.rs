//! Validates `mcm --format json` output with the in-tree parser — the
//! CI `json-smoke` job pipes CLI documents through this.
//!
//! Usage: `cargo run --example validate_json -- FILE [FILE ...]`
//! Exits nonzero if any file fails to parse, lacks the schema envelope,
//! or does not survive an emit/parse round trip.

use litmus_mcm::core::json::Json;

fn validate(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{path}: missing schema_version"))?;
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing kind"))?
        .to_string();
    let round_tripped = Json::parse(&doc.pretty())
        .map_err(|e| format!("{path}: emitted document failed to re-parse: {e}"))?;
    if round_tripped != doc {
        return Err(format!("{path}: document changed across a round trip"));
    }
    Ok(format!(
        "{path}: ok (kind={kind}, schema_version={version}, {} bytes)",
        text.len()
    ))
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_json FILE [FILE ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match validate(path) {
            Ok(summary) => println!("{summary}"),
            Err(message) => {
                eprintln!("error: {message}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
