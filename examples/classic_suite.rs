//! Runs the classic community litmus tests (SB, MP, LB, CoRR, IRIW) under
//! the named hardware models and prints the folklore table, then parses a
//! test from the text format to show the round trip.
//!
//! Run with `cargo run --example classic_suite`.

use litmus_mcm::axiomatic::{Checker, ExplicitChecker};
use litmus_mcm::core::parse;
use litmus_mcm::models::{catalog, named};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let models = vec![
        named::sc(),
        named::ibm370(),
        named::tso(),
        named::pso(),
        named::alpha(),
        named::rmo(),
    ];
    let tests = vec![
        catalog::sb(),
        catalog::mp(),
        catalog::lb(),
        catalog::corr(),
        catalog::iriw_fenced(),
    ];
    let checker = ExplicitChecker::new();

    print!("{:14}", "test");
    for model in &models {
        print!("{:>9}", model.name());
    }
    println!();
    for test in &tests {
        print!("{:14}", test.name());
        for model in &models {
            print!(
                "{:>9}",
                if checker.is_allowed(model, test) { "allowed" } else { "-" }
            );
        }
        println!();
    }

    // ----- the text format ----------------------------------------------
    let source = r#"
test MP+fences "message passing with fences" {
  thread {
    write X = 1
    fence
    write Y = 1
  }
  thread {
    read Y -> r1
    fence
    read X -> r2
  }
  outcome { T1:r1 = 1; T1:r2 = 0 }
}
"#
    .replace("T1:r1", "T2:r1")
    .replace("T1:r2", "T2:r2");
    let test = parse::parse_litmus(&source)?;
    println!("\nparsed from source:\n{test}");
    for model in &models {
        println!(
            "  {:8} {}",
            model.name(),
            checker.check(model, &test)
        );
    }
    println!("\nround-trip source:\n{}", parse::to_source(&test));
    Ok(())
}
