//! Compares two memory models with the Theorem 1 template suite: reports
//! the relation (equivalent / stronger / weaker / incomparable) and the
//! litmus tests witnessing each direction — the workflow of the paper's
//! tool (§4.1).
//!
//! Run with `cargo run --example compare_models` or pass two model names:
//! `cargo run --example compare_models -- TSO M4144`.

use litmus_mcm::axiomatic::ExplicitChecker;
use litmus_mcm::core::MemoryModel;
use litmus_mcm::explore::paper::comparison_tests;
use litmus_mcm::explore::{Exploration, Relation};
use litmus_mcm::models::{named, DigitModel};

fn resolve(name: &str) -> Option<MemoryModel> {
    match name.to_ascii_uppercase().as_str() {
        "SC" => Some(named::sc()),
        "TSO" => Some(named::tso()),
        "X86" => Some(named::x86()),
        "PSO" => Some(named::pso()),
        "IBM370" => Some(named::ibm370()),
        "RMO" => Some(named::rmo()),
        "RMO-NODEP" => Some(named::rmo_without_dependencies()),
        "ALPHA" => Some(named::alpha()),
        other => other.parse::<DigitModel>().ok().map(|d| d.to_model()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (left_name, right_name) = match args.as_slice() {
        [a, b] => (a.clone(), b.clone()),
        _ => ("TSO".to_string(), "IBM370".to_string()),
    };
    let left = resolve(&left_name).unwrap_or_else(|| {
        eprintln!("unknown model `{left_name}` (use SC/TSO/x86/PSO/IBM370/RMO/Alpha or M####)");
        std::process::exit(2);
    });
    let right = resolve(&right_name).unwrap_or_else(|| {
        eprintln!("unknown model `{right_name}`");
        std::process::exit(2);
    });

    println!("{left}");
    println!("{right}");

    let expl = Exploration::run(
        vec![left, right],
        comparison_tests(true),
        &ExplicitChecker::new(),
    );
    let relation = expl.relation(0, 1);
    println!(
        "\nrelation: {} is {} (with respect to {})",
        expl.models[0].name(),
        relation,
        expl.models[1].name(),
    );
    match relation {
        Relation::Equivalent => {
            println!("(no litmus test in the complete suite separates them)");
        }
        _ => {
            println!("\nwitness tests:");
            for t in expl.distinguishing_tests(0, 1) {
                let test = &expl.tests[t];
                let a = expl.verdicts[0].allowed(t);
                println!(
                    "  {:40} {} allows, {} forbids",
                    test.name(),
                    if a { expl.models[0].name() } else { expl.models[1].name() },
                    if a { expl.models[1].name() } else { expl.models[0].name() },
                );
            }
            // Show one witness in full.
            if let Some(&t) = expl.distinguishing_tests(0, 1).first() {
                println!("\nfirst witness in full:\n{}", expl.tests[t]);
            }
        }
    }
}
