//! Compares two memory models with the Theorem 1 template suite through
//! the unified query API: the relation (equivalent / stronger / weaker /
//! incomparable) comes back as a typed [`CompareReport`], rendered here
//! both as the CLI's text and as a JSON document.
//!
//! Run with `cargo run --example compare_models` or pass two model names:
//! `cargo run --example compare_models -- TSO M4144`.
//!
//! [`CompareReport`]: litmus_mcm::query::CompareReport

use litmus_mcm::query::{Format, Query, Render};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (left, right) = match args.as_slice() {
        [a, b] => (a.clone(), b.clone()),
        _ => ("TSO".to_string(), "IBM370".to_string()),
    };

    let report = match Query::compare(&left, &right).run() {
        Ok(report) => report,
        Err(err) => {
            // Unknown model names are usage errors, like the CLI's exit 2.
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    };

    // Typed access to the result ...
    println!(
        "relation: {} is {} (with respect to {}, over {} tests)",
        report.left, report.relation, report.right, report.tests,
    );
    if report.witnesses.is_empty() {
        println!("(no litmus test in the complete suite separates them)");
    } else {
        println!("\nwitness tests:");
        for witness in &report.witnesses {
            println!(
                "  {:40} {} allows, {} forbids",
                witness.test, witness.allowed_by, witness.forbidden_by,
            );
        }
    }

    // ... and the exact same report as the CLI would print it, then as a
    // machine-readable document.
    println!("\n--- text rendering (what `mcm compare` prints) ---");
    print!("{}", report.text());
    println!("\n--- JSON rendering (what `mcm compare --format json` prints) ---");
    print!("{}", report.render(Format::Json).expect("json is total"));
}
